"""The scheduling-graph search problem (Section 4.3).

:class:`SchedulingProblem` encapsulates everything the A* search needs:

* successor generation with the paper's two graph reductions — a new VM may
  only be provisioned when the most recent VM is non-empty, and queries may
  only be placed on the most recent VM;
* incremental cost bookkeeping per search node: infrastructure cost (start-up
  fees plus rental for executed queries), the partial schedule's SLA penalty,
  and the wait time of the most recent VM;
* the admissible heuristic of Equation 3 (cheapest possible execution cost of
  the remaining queries), used when the performance goal is monotonically
  increasing, and the corresponding lower-bound priority for non-monotonic
  goals (infrastructure plus remaining execution, penalty ignored until a goal
  vertex is reached — a valid lower bound because penalties are non-negative).

Nodes fully determine their partial schedule, so the best goal vertex found by
the search is the minimum-cost complete schedule regardless of the path taken
to reach it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.cloud.latency import LatencyModel
from repro.cloud.vm import VMTypeCatalog
from repro.exceptions import SpecificationError
from repro.search.actions import Action, PlaceQuery, ProvisionVM
from repro.search.state import SearchState, freeze_counts
from repro.sla.base import PerformanceGoal
from repro.workloads.templates import TemplateSet
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class LatencyOutcome:
    """Lightweight per-query outcome used while searching partial schedules.

    Only the two attributes the SLA classes read (``template_name`` and
    ``latency``) are carried; building full :class:`~repro.core.outcome.QueryOutcome`
    objects for every explored vertex would dominate the search time.
    """

    template_name: str
    latency: float


@dataclass
class SearchNode:
    """A vertex plus the incremental bookkeeping the search needs."""

    state: SearchState
    parent: "SearchNode | None"
    action: Action | None
    infra_cost: float
    penalty: float
    outcomes: tuple[LatencyOutcome, ...]
    last_vm_finish: float
    depth: int
    priority: float = field(default=0.0)

    @property
    def partial_cost(self) -> float:
        """Cost of the node's partial schedule: infrastructure plus penalty."""
        return self.infra_cost + self.penalty

    def path(self) -> list["SearchNode"]:
        """Nodes from the start vertex to this node, inclusive."""
        nodes: list[SearchNode] = []
        node: SearchNode | None = self
        while node is not None:
            nodes.append(node)
            node = node.parent
        nodes.reverse()
        return nodes


class SchedulingProblem:
    """Scheduling-graph construction, reduction, and cost bookkeeping."""

    def __init__(
        self,
        template_counts: Mapping[str, int] | Counter[str],
        templates: TemplateSet,
        vm_types: VMTypeCatalog,
        goal: PerformanceGoal,
        latency_model: LatencyModel,
    ) -> None:
        counts = {name: count for name, count in dict(template_counts).items() if count > 0}
        for name in counts:
            if name not in templates:
                raise SpecificationError(f"workload references unknown template {name!r}")
        self._counts = counts
        self._templates = templates
        self._vm_types = vm_types
        self._goal = goal
        self._latency_model = latency_model
        self._cheapest_execution = self._compute_cheapest_execution()

    # -- constructors -----------------------------------------------------------

    @classmethod
    def for_workload(
        cls,
        workload: Workload,
        vm_types: VMTypeCatalog,
        goal: PerformanceGoal,
        latency_model: LatencyModel,
    ) -> "SchedulingProblem":
        """Build the problem for a concrete workload (counts its templates)."""
        return cls(
            template_counts=workload.template_counts(),
            templates=workload.templates,
            vm_types=vm_types,
            goal=goal,
            latency_model=latency_model,
        )

    # -- accessors ---------------------------------------------------------------

    @property
    def templates(self) -> TemplateSet:
        """The template universe of the workload being scheduled."""
        return self._templates

    @property
    def vm_types(self) -> VMTypeCatalog:
        """The IaaS catalogue available to the scheduler."""
        return self._vm_types

    @property
    def goal(self) -> PerformanceGoal:
        """The performance goal the schedule must satisfy."""
        return self._goal

    @property
    def latency_model(self) -> LatencyModel:
        """The latency estimates used to cost placements."""
        return self._latency_model

    @property
    def template_counts(self) -> dict[str, int]:
        """Number of queries per template in the workload being scheduled."""
        return dict(self._counts)

    # -- initial node ---------------------------------------------------------------

    def initial_node(self) -> SearchNode:
        """The start vertex: nothing provisioned, everything unassigned."""
        state = SearchState.initial(self._counts)
        node = SearchNode(
            state=state,
            parent=None,
            action=None,
            infra_cost=0.0,
            penalty=0.0,
            outcomes=(),
            last_vm_finish=0.0,
            depth=0,
        )
        node.priority = self.priority(node)
        return node

    # -- successor generation (with the Section 4.3 reductions) ---------------------

    def expand(self, node: SearchNode) -> list[SearchNode]:
        """All successor nodes of *node* in the reduced scheduling graph."""
        successors: list[SearchNode] = []
        state = node.state
        last = state.last_vm()

        # Placement edges: only onto the most recently provisioned VM.
        if last is not None:
            vm_type = self._vm_types[last[0]]
            for template_name in state.remaining_templates():
                if not vm_type.supports(template_name):
                    continue
                if not self._placement_respects_ordering(node, template_name):
                    continue
                successors.append(self._place(node, template_name))

        # Start-up edges: only when the last VM is non-empty (or none exists),
        # and only if there is still work to assign.
        if state.remaining and not state.last_vm_is_empty():
            for vm_type in self._vm_types:
                successors.append(self._provision(node, vm_type.name))
        return successors

    def _placement_respects_ordering(self, node: SearchNode, template_name: str) -> bool:
        """Third graph reduction: dominance pruning of redundant queue orders.

        Two complementary rules, both of which keep at least one optimal goal
        vertex reachable:

        * **Adjacent pairwise interchange** (deadline-style goals): swapping
          the candidate with the query most recently placed on the same VM
          leaves every other query's completion time untouched, so if the
          swapped order is strictly cheaper — or equally cheap but in canonical
          (shortest-first) order — the current order is dominated and pruned.
        * **Order-free horizon** (all goals): while the VM's busy time stays
          within :meth:`PerformanceGoal.ordering_horizon`, query order cannot
          affect the penalty at all, so only the canonical order is explored.
        """
        last = node.state.last_vm()
        assert last is not None
        queue = last[1]
        if not queue:
            return True
        vm_type = self._vm_types[last[0]]
        previous = queue[-1]
        execution_time = self._latency_model.latency(template_name, vm_type)
        previous_execution = self._latency_model.latency(previous, vm_type)
        previous_key = (previous_execution, previous)
        candidate_key = (execution_time, template_name)

        previous_deadline = self._goal.query_deadline(previous)
        candidate_deadline = self._goal.query_deadline(template_name)
        if previous_deadline is not None and candidate_deadline is not None:
            start = node.last_vm_finish - previous_execution
            pair_total = previous_execution + execution_time
            current_violation = max(0.0, node.last_vm_finish - previous_deadline) + max(
                0.0, start + pair_total - candidate_deadline
            )
            swapped_violation = max(0.0, start + execution_time - candidate_deadline) + max(
                0.0, start + pair_total - previous_deadline
            )
            if swapped_violation < current_violation - 1e-9:
                return False
            if abs(swapped_violation - current_violation) <= 1e-9:
                return candidate_key >= previous_key
            return True

        completion = node.last_vm_finish + execution_time
        horizon = self._goal.ordering_horizon(queue, template_name)
        if completion > horizon:
            return True
        return candidate_key >= previous_key

    def _provision(self, node: SearchNode, vm_type_name: str) -> SearchNode:
        vm_type = self._vm_types[vm_type_name]
        child = SearchNode(
            state=node.state.with_new_vm(vm_type_name),
            parent=node,
            action=ProvisionVM(vm_type_name),
            infra_cost=node.infra_cost + vm_type.startup_cost,
            penalty=node.penalty,
            outcomes=node.outcomes,
            last_vm_finish=0.0,
            depth=node.depth + 1,
        )
        child.priority = self.priority(child)
        return child

    def _place(self, node: SearchNode, template_name: str) -> SearchNode:
        last = node.state.last_vm()
        assert last is not None  # guarded by expand()
        vm_type = self._vm_types[last[0]]
        execution_time = self._latency_model.latency(template_name, vm_type)
        completion = node.last_vm_finish + execution_time
        outcomes = node.outcomes + (LatencyOutcome(template_name, completion),)
        child = SearchNode(
            state=node.state.with_placement(template_name),
            parent=node,
            action=PlaceQuery(template_name),
            infra_cost=node.infra_cost + vm_type.running_cost * execution_time,
            penalty=self._goal.penalty(outcomes),
            outcomes=outcomes,
            last_vm_finish=completion,
            depth=node.depth + 1,
        )
        child.priority = self.priority(child)
        return child

    # -- edge costs (Equation 2), used by the cost-of-X feature ----------------------

    def placement_edge_cost(self, node: SearchNode, template_name: str) -> float:
        """Weight of the placement edge for *template_name* out of *node*.

        Equation 2: execution time times the VM's rental rate, plus the change
        in penalty caused by the placement.  Returns ``inf`` when the most
        recent VM cannot process the template (or no VM exists yet).
        """
        last = node.state.last_vm()
        if last is None:
            return float("inf")
        vm_type = self._vm_types[last[0]]
        if not vm_type.supports(template_name):
            return float("inf")
        execution_time = self._latency_model.latency(template_name, vm_type)
        completion = node.last_vm_finish + execution_time
        outcomes = node.outcomes + (LatencyOutcome(template_name, completion),)
        penalty_delta = self._goal.penalty(outcomes) - node.penalty
        return vm_type.running_cost * execution_time + penalty_delta

    def startup_edge_cost(self, vm_type_name: str) -> float:
        """Weight of a start-up edge for *vm_type_name* (its provisioning fee)."""
        return self._vm_types[vm_type_name].startup_cost

    # -- heuristics and priorities ----------------------------------------------------

    def _compute_cheapest_execution(self) -> dict[str, float]:
        cheapest: dict[str, float] = {}
        self._cheapest_time: dict[str, float] = {}
        for name in self._counts:
            costs = []
            times = []
            for vm_type in self._vm_types:
                if not vm_type.supports(name):
                    continue
                latency = self._latency_model.latency(name, vm_type)
                costs.append(vm_type.running_cost * latency)
                times.append(latency)
            if not costs:
                raise SpecificationError(
                    f"no VM type in the catalogue supports template {name!r}"
                )
            cheapest[name] = min(costs)
            self._cheapest_time[name] = min(times)
        self._min_startup_cost = min(vm.startup_cost for vm in self._vm_types)
        self._capacity_deadline = self._penalty_free_capacity()
        return cheapest

    def _penalty_free_capacity(self) -> float | None:
        """Largest busy time a VM can reach before the goal starts penalising.

        Only defined for the deadline-style monotonic goals (max latency and
        per-query deadlines), where any query completing after the relevant
        deadline accrues violation time.  Used by the provisioning lower bound
        below; ``None`` disables that bound.
        """
        if not self._goal.is_monotonic:
            return None
        deadline = getattr(self._goal, "deadline", None)
        if deadline is None or deadline <= 0:
            return None
        deadlines = getattr(self._goal, "deadlines", None)
        if deadlines:
            relevant = [value for value in dict(deadlines).values()]
            if relevant:
                return max(relevant)
        return float(deadline)

    def remaining_execution_bound(self, state: SearchState) -> float:
        """Equation 3: cheapest possible execution cost of the unassigned queries."""
        return sum(
            self._cheapest_execution[name] * count for name, count in state.remaining
        )

    def heuristic(self, state: SearchState) -> float:
        """Admissible cost-to-go estimate for *state*.

        For monotonically increasing goals this is Equation 3; for other goals
        the same quantity is still a valid lower bound on the *infrastructure*
        part of the remaining cost, so it is used as the cost-to-go term while
        the partial penalty is excluded from the node's g-value (see
        :meth:`priority`).
        """
        return self.remaining_execution_bound(state)

    def provisioning_bound(self, node: SearchNode) -> float:
        """Lower bound on the future provisioning-or-penalty cost at *node*.

        For deadline-style goals every VM can absorb at most ``D`` seconds of
        work before its queue starts violating (``D`` being the deadline, or
        the loosest per-template deadline).  If ``W`` seconds of work remain
        and the most recent VM has ``slack`` seconds of headroom, then any
        completion of the schedule with ``k`` additional VMs pays at least
        ``k`` start-up fees plus penalties for the work that does not fit:

            k * f_s  +  rate * max(0, W - slack - k * D)

        Minimising over ``k`` gives an admissible bound on the cost still to be
        paid *beyond* the pure execution cost of Equation 3.  For goals without
        a per-query deadline semantics the bound is zero.
        """
        capacity = self._capacity_deadline
        if capacity is None or not node.state.remaining:
            return 0.0
        remaining_work = sum(
            self._cheapest_time[name] * count for name, count in node.state.remaining
        )
        slack = 0.0
        if node.state.last_vm() is not None:
            slack = max(0.0, capacity - node.last_vm_finish)
        overflow = remaining_work - slack
        if overflow <= 0:
            return 0.0
        rate = self._goal.penalty_rate
        max_new_vms = int(overflow // capacity) + 1
        best = float("inf")
        for new_vms in range(max_new_vms + 1):
            unplaced = max(0.0, overflow - new_vms * capacity)
            best = min(best, new_vms * self._min_startup_cost + rate * unplaced)
        return best

    def priority(self, node: SearchNode) -> float:
        """A* f-value: a lower bound on the best complete-schedule cost via *node*.

        * Goal vertices use their true cost (infrastructure + penalty).
        * For monotonic goals, internal vertices use
          ``infrastructure + partial penalty + Equation-3 heuristic`` — the
          partial penalty can only grow, so the bound is admissible.
        * For non-monotonic goals the partial penalty is dropped (it may shrink
          as more queries arrive), leaving ``infrastructure + heuristic``,
          which is admissible because penalties are never negative.
        """
        if node.state.is_goal():
            return node.partial_cost
        bound = node.infra_cost + self.remaining_execution_bound(node.state)
        if self._goal.is_monotonic:
            bound += node.penalty + self.provisioning_bound(node)
        else:
            remaining_bounds: list[float] = []
            for name, count in node.state.remaining:
                remaining_bounds.extend([self._cheapest_time[name]] * count)
            assigned = [outcome.latency for outcome in node.outcomes]
            bound += self._goal.future_cost_lower_bound(
                assigned, remaining_bounds, self._min_startup_cost
            )
        return bound

    # -- miscellany ---------------------------------------------------------------------

    def is_goal(self, state: SearchState) -> bool:
        """True when *state* is a goal vertex (complete schedule)."""
        return state.is_goal()

    def total_queries(self) -> int:
        """Number of queries in the workload being scheduled."""
        return sum(self._counts.values())

    def initial_counts(self) -> tuple[tuple[str, int], ...]:
        """Frozen template counts of the workload (canonical order)."""
        return freeze_counts(self._counts)

    def partial_cost_of(self, outcomes: Sequence[LatencyOutcome], infra_cost: float) -> float:
        """Cost of an arbitrary partial schedule description under this goal."""
        return infra_cost + self._goal.penalty(outcomes)
