"""The scheduling-graph search problem (Section 4.3).

:class:`SchedulingProblem` encapsulates everything the A* search needs:

* successor generation with the paper's two graph reductions — a new VM may
  only be provisioned when the most recent VM is non-empty, and queries may
  only be placed on the most recent VM;
* incremental cost bookkeeping per search node: infrastructure cost (start-up
  fees plus rental for executed queries), the partial schedule's SLA penalty,
  and the wait time of the most recent VM;
* the admissible heuristic of Equation 3 (cheapest possible execution cost of
  the remaining queries), used when the performance goal is monotonically
  increasing, and the corresponding lower-bound priority for non-monotonic
  goals (infrastructure plus remaining execution, penalty ignored until a goal
  vertex is reached — a valid lower bound because penalties are non-negative).

Nodes fully determine their partial schedule, so the best goal vertex found by
the search is the minimum-cost complete schedule regardless of the path taken
to reach it.

Hot-path architecture
---------------------

The search core is built around *incremental state* and *precomputed tables*
so that the per-vertex work is O(1)-ish rather than proportional to the number
of queries already placed:

* **Incremental penalties.**  Every :class:`SearchNode` carries a copy-on-write
  :class:`~repro.sla.accumulators.ViolationAccumulator` (obtained from
  :meth:`~repro.sla.base.PerformanceGoal.search_accumulator`) describing its
  partial schedule.  A placement edge branches the parent's accumulator and
  records one completion, so node penalties and Equation-2 edge weights are
  O(1)/O(log n) deltas instead of ``goal.penalty(outcomes)`` scans over the
  whole outcome tuple (which made each optimal path quadratic).  Retraining
  searches (adaptive A*, Section 5) carry a *second* accumulator for the
  problem's ``aux_goal`` — the old goal — maintained the same copy-on-write
  way, so the adaptive bound's ``cost(R, v)`` term is an O(1) read too.
* **Interned ids and dense tables.**  Template names and VM type names are
  interned to integer ids at problem construction, and per-``(vm, template)``
  latency, execution-cost, and supports tables are precomputed, so ``expand``,
  ``_place``, and the dominance checks stop doing string-keyed dict walks and
  attribute lookups per node.  Each node caches the integer id of its most
  recent VM.
* **Memoized remaining-work terms.**  The Equation-3 heuristic and the
  provisioning-bound work terms depend only on the *remaining* multiset, which
  the search revisits constantly, so they are memoized per multiset.  (A
  parent-minus-placed-contribution running value would also be O(1), but
  floating-point subtraction is inexact and would perturb tie-breaking;
  memoization keeps every f-value bit-identical to a fresh evaluation.)

The accumulators agree with the batch :meth:`PerformanceGoal.penalty`
definition bit-for-bit (property-tested across all four goal kinds), so
optimal costs and chosen schedules are unchanged.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, NamedTuple, Sequence

from repro.cloud.latency import LatencyModel
from repro.cloud.vm import VMTypeCatalog
from repro.exceptions import SpecificationError
from repro.search.actions import Action, PlaceQuery, ProvisionVM
from repro.search.state import SearchState, freeze_counts
from repro.sla.accumulators import ViolationAccumulator
from repro.sla.base import PerformanceGoal
from repro.workloads.templates import TemplateSet
from repro.workloads.workload import Workload

_INF = float("inf")


def _min_provisioning_cost(
    overflow: float, capacity: float, min_startup: float, rate: float
) -> float:
    """min over k of ``k * min_startup + rate * max(0, overflow - k * capacity)``.

    The inner loop of the deadline-goal provisioning bound, shared by
    :meth:`SchedulingProblem.provisioning_bound` and the two f-value blocks
    inlined in :meth:`SchedulingProblem.expand` so the three sites cannot
    drift apart (the search's bit-identical f-values depend on them agreeing).
    Callers guarantee ``overflow > 0`` and ``capacity > 0``.
    """
    best = _INF
    for new_vms in range(int(overflow // capacity) + 2):
        unplaced = overflow - new_vms * capacity
        cost = new_vms * min_startup + rate * (unplaced if unplaced > 0.0 else 0.0)
        if cost < best:
            best = cost
    return best


class LatencyOutcome(NamedTuple):
    """Lightweight per-query outcome used while searching partial schedules.

    Only the two attributes the SLA classes read (``template_name`` and
    ``latency``) are carried; building full :class:`~repro.core.outcome.QueryOutcome`
    objects for every explored vertex would dominate the search time.  A named
    tuple rather than a dataclass: one is built per placement edge, and tuple
    construction is several times cheaper than a frozen-dataclass ``__init__``.
    """

    template_name: str
    latency: float


@dataclass(slots=True)
class SearchNode:
    """A vertex plus the incremental bookkeeping the search needs.

    ``accumulator`` tracks the partial schedule's violation period
    incrementally (see the module docstring); ``last_vm_index`` caches the
    interned id of the most recent VM's type so successor generation does not
    re-resolve it.  Both default to their "absent" values so lightweight
    runtime contexts (e.g. the batch scheduler) can build nodes without them.
    """

    state: SearchState
    parent: "SearchNode | None"
    action: Action | None
    infra_cost: float
    penalty: float
    outcomes: tuple[LatencyOutcome, ...]
    last_vm_finish: float
    depth: int
    priority: float = field(default=0.0)
    accumulator: ViolationAccumulator | None = field(default=None)
    last_vm_index: int = field(default=-1)
    #: Cached non-monotonic future-cost term of the f-value (-1.0 = not
    #: computed).  Provision edges keep (outcomes, remaining) unchanged, so
    #: their children reuse the parent's term without rebuilding the memo key.
    future_bound: float = field(default=-1.0)
    #: Assigned-latency key for the non-monotonic future-cost memo (``None`` =
    #: not computed).  Maintained incrementally along placement edges — one
    #: ``bisect`` insertion for order-invariant goals, one tuple append
    #: otherwise — so the memo key is never rebuilt (or re-sorted) from the
    #: outcome tuple per generated vertex.
    latency_key: "tuple[float, ...] | None" = field(default=None)
    #: Second, *auxiliary-goal* accumulator carried by retraining searches
    #: (adaptive A*, Section 5): tracks the partial schedule's violation under
    #: the problem's ``aux_goal`` — the *old* goal — copy-on-write exactly like
    #: the primary accumulator.  ``None`` on ordinary searches.
    aux_accumulator: ViolationAccumulator | None = field(default=None)
    #: Partial penalty under the auxiliary goal (``-1.0`` = not carried), read
    #: by :class:`~repro.adaptive.retraining.AdaptiveBound` as an O(1) delta
    #: instead of re-evaluating the old goal over the full outcome tuple.
    aux_penalty: float = field(default=-1.0)
    #: Incremental aggregate maintained by a registered
    #: :class:`~repro.search.bounds.FutureCostBound` along placement edges
    #: (e.g. the tight average bound's running ``(count, sum)``).  ``None``
    #: for the default memoized bound and for externally built nodes.
    bound_state: object = field(default=None)

    @property
    def partial_cost(self) -> float:
        """Cost of the node's partial schedule: infrastructure plus penalty."""
        return self.infra_cost + self.penalty

    def __repr__(self) -> str:
        """Compact, non-recursive rendering (the generated dataclass repr
        would chase the whole ``parent`` chain — useless in a failed property
        test).  Surfaces the incremental bookkeeping a debugging session needs:
        the PR-4 auxiliary penalty and the latency-key / bound-state memo
        inputs alongside the classic cost fields."""
        key = self.latency_key
        key_text = "None" if key is None else f"<{len(key)} latencies>"
        aux = "absent" if self.aux_penalty < 0.0 else f"{self.aux_penalty:.6g}"
        return (
            f"SearchNode(depth={self.depth}, state=[{self.state.describe()}], "
            f"action={self.action!r}, infra={self.infra_cost:.6g}, "
            f"penalty={self.penalty:.6g}, priority={self.priority:.6g}, "
            f"last_vm_finish={self.last_vm_finish:.6g}, "
            f"future_bound={self.future_bound:.6g}, latency_key={key_text}, "
            f"aux_penalty={aux}, bound_state={self.bound_state!r})"
        )

    def debug_dict(self) -> dict:
        """Every field a failed search assertion needs, as plain data.

        Unlike :meth:`__repr__` this keeps the full latency key, so property
        tests can print actionable vertices (``pytest`` truncates nothing).
        """
        return {
            "depth": self.depth,
            "state": self.state.describe(),
            "action": repr(self.action),
            "infra_cost": self.infra_cost,
            "penalty": self.penalty,
            "priority": self.priority,
            "last_vm_finish": self.last_vm_finish,
            "future_bound": self.future_bound,
            "latency_key": self.latency_key,
            "aux_penalty": self.aux_penalty,
            "bound_state": self.bound_state,
            "outcomes": tuple(self.outcomes),
        }

    def path(self) -> list["SearchNode"]:
        """Nodes from the start vertex to this node, inclusive."""
        nodes: list[SearchNode] = []
        node: SearchNode | None = self
        while node is not None:
            nodes.append(node)
            node = node.parent
        nodes.reverse()
        return nodes


class SchedulingProblem:
    """Scheduling-graph construction, reduction, and cost bookkeeping."""

    def __init__(
        self,
        template_counts: Mapping[str, int] | Counter[str],
        templates: TemplateSet,
        vm_types: VMTypeCatalog,
        goal: PerformanceGoal,
        latency_model: LatencyModel,
        aux_goal: PerformanceGoal | None = None,
        future_bound: str = "memoized",
    ) -> None:
        counts = {name: count for name, count in dict(template_counts).items() if count > 0}
        for name in counts:
            if name not in templates:
                raise SpecificationError(f"workload references unknown template {name!r}")
        self._counts = counts
        self._templates = templates
        self._vm_types = vm_types
        self._goal = goal
        self._latency_model = latency_model
        #: Optional second goal whose partial penalty every node carries
        #: incrementally (adaptive A*: the *old* goal of a retraining search,
        #: consumed by :class:`~repro.adaptive.retraining.AdaptiveBound`).
        self._aux_goal = aux_goal
        self._aux_rate = aux_goal.penalty_rate if aux_goal is not None else 0.0
        #: When the old goal differs from the primary only by its deadline and
        #: the primary accumulator's state is deadline-independent (average,
        #: percentile), the old violation is read off the *primary*
        #: accumulator at this deadline — no second accumulator at all.
        self._aux_derived_deadline = (
            goal.derived_aux_deadline(aux_goal) if aux_goal is not None else None
        )
        self._build_tables()
        self._cheapest_execution = self._compute_cheapest_execution()
        #: remaining multiset -> (Equation-3 bound, cheapest remaining work time)
        self._bounds_cache: dict[tuple[tuple[str, int], ...], tuple[float, float]] = {}
        #: remaining multiset -> per-query latency lower bounds (non-monotonic goals)
        self._latency_bounds_cache: dict[tuple[tuple[str, int], ...], list[float]] = {}
        #: (remaining multiset, assigned-latency key) -> future-cost lower bound
        self._future_cost_cache: dict[tuple, float] = {}
        #: Whether the goal's bound may be memoised per assigned-latency *multiset*
        #: (bit-identical under permutation) rather than per exact sequence.
        self._future_bound_order_invariant = bool(
            getattr(goal, "future_bound_order_invariant", False)
        )
        #: Registered future-cost bound in effect for the non-monotonic term.
        #: ``"memoized"`` keeps the inlined default path (no bound object at
        #: all — bit-identical to every release before the registry existed);
        #: any other name instantiates a fresh bound from
        #: :data:`repro.search.bounds.FUTURE_COST_BOUNDS` per problem.
        self._future_bound_name = future_bound or "memoized"
        if self._future_bound_name == "memoized" or self._is_monotonic:
            self._bound_obj = None
        else:
            from repro.search.bounds import create_future_bound

            self._bound_obj = create_future_bound(self._future_bound_name)
            self._bound_obj.attach(self)

    # -- precomputed tables --------------------------------------------------------

    def _build_tables(self) -> None:
        """Intern names to integer ids and precompute dense per-(vm, template) tables."""
        self._tpl_names: tuple[str, ...] = self._templates.names
        self._tpl_id: dict[str, int] = {
            name: index for index, name in enumerate(self._tpl_names)
        }
        self._vm_names: tuple[str, ...] = self._vm_types.names
        self._vm_id: dict[str, int] = {
            name: index for index, name in enumerate(self._vm_names)
        }
        self._startup_costs: list[float] = []
        self._supports_table: list[list[bool]] = []
        self._latency_table: list[list[float]] = []
        self._run_cost_table: list[list[float]] = []
        for vm_type in self._vm_types:
            self._startup_costs.append(vm_type.startup_cost)
            supports_row: list[bool] = []
            latency_row: list[float] = []
            run_cost_row: list[float] = []
            for name in self._tpl_names:
                if vm_type.supports(name):
                    latency = self._latency_model.latency(name, vm_type)
                    supports_row.append(True)
                    latency_row.append(latency)
                    run_cost_row.append(vm_type.running_cost * latency)
                else:
                    supports_row.append(False)
                    latency_row.append(_INF)
                    run_cost_row.append(_INF)
            self._supports_table.append(supports_row)
            self._latency_table.append(latency_row)
            self._run_cost_table.append(run_cost_row)
        self._rate = self._goal.penalty_rate
        self._is_monotonic = bool(self._goal.is_monotonic)
        #: Per-template deadline (or None), resolved once instead of per vertex.
        self._query_deadlines: list[float | None] = [
            self._goal.query_deadline(name) for name in self._tpl_names
        ]
        # Actions are immutable value objects, so one shared instance per
        # template / VM type avoids a frozen-dataclass __init__ per child.
        self._place_actions: list[PlaceQuery] = [
            PlaceQuery(name) for name in self._tpl_names
        ]
        self._provision_actions: list[ProvisionVM] = [
            ProvisionVM(name) for name in self._vm_names
        ]

    # -- constructors -----------------------------------------------------------

    @classmethod
    def for_workload(
        cls,
        workload: Workload,
        vm_types: VMTypeCatalog,
        goal: PerformanceGoal,
        latency_model: LatencyModel,
        aux_goal: PerformanceGoal | None = None,
        future_bound: str = "memoized",
    ) -> "SchedulingProblem":
        """Build the problem for a concrete workload (counts its templates)."""
        return cls(
            template_counts=workload.template_counts(),
            templates=workload.templates,
            vm_types=vm_types,
            goal=goal,
            latency_model=latency_model,
            aux_goal=aux_goal,
            future_bound=future_bound,
        )

    @property
    def aux_goal(self) -> PerformanceGoal | None:
        """The auxiliary goal nodes carry a second accumulator for (or ``None``)."""
        return self._aux_goal

    @property
    def future_bound_name(self) -> str:
        """Name of the registered future-cost bound in effect."""
        return self._future_bound_name

    @property
    def min_startup_cost(self) -> float:
        """Cheapest start-up fee in the VM catalogue (used by the bounds)."""
        return self._min_startup_cost

    # -- accessors ---------------------------------------------------------------

    @property
    def templates(self) -> TemplateSet:
        """The template universe of the workload being scheduled."""
        return self._templates

    @property
    def vm_types(self) -> VMTypeCatalog:
        """The IaaS catalogue available to the scheduler."""
        return self._vm_types

    @property
    def goal(self) -> PerformanceGoal:
        """The performance goal the schedule must satisfy."""
        return self._goal

    @property
    def latency_model(self) -> LatencyModel:
        """The latency estimates used to cost placements."""
        return self._latency_model

    @property
    def template_counts(self) -> dict[str, int]:
        """Number of queries per template in the workload being scheduled."""
        return dict(self._counts)

    # -- initial node ---------------------------------------------------------------

    def initial_node(self) -> SearchNode:
        """The start vertex: nothing provisioned, everything unassigned."""
        state = SearchState.initial(self._counts)
        node = SearchNode(
            state=state,
            parent=None,
            action=None,
            infra_cost=0.0,
            penalty=0.0,
            outcomes=(),
            last_vm_finish=0.0,
            depth=0,
            accumulator=self._goal.search_accumulator(),
        )
        if self._aux_goal is not None:
            if self._aux_derived_deadline is None:
                node.aux_accumulator = self._aux_goal.search_accumulator()
            node.aux_penalty = 0.0
        if self._bound_obj is not None:
            node.bound_state = self._bound_obj.initial_state(self, node)
        node.priority = self.priority(node)
        return node

    # -- successor generation (with the Section 4.3 reductions) ---------------------

    def expand(self, node: SearchNode) -> list[SearchNode]:
        """All successor nodes of *node* in the reduced scheduling graph.

        This is the innermost loop of the A* search: every lookup table is
        hoisted into locals and the per-child work — the dominance pruning of
        queue orders, the incremental penalty update, and the child's f-value
        — is inlined rather than dispatched through helper methods.  The
        inlined f-value computation mirrors :meth:`priority` (kept in sync;
        the property-based search tests compare the two) and the dominance
        rules are documented there:

        * **Adjacent pairwise interchange** (deadline-style goals): swapping
          the candidate with the query most recently placed on the same VM
          leaves every other query's completion time untouched, so if the
          swapped order is strictly cheaper — or equally cheap but in canonical
          (shortest-first) order — the current order is dominated and pruned.
        * **Order-free horizon** (all goals): while the VM's busy time stays
          within :meth:`PerformanceGoal.ordering_horizon`, query order cannot
          affect the penalty at all, so only the canonical order is explored.
        """
        successors: list[SearchNode] = []
        state = node.state
        vms = state.vms
        remaining = state.remaining
        depth = node.depth + 1
        parent_infra = node.infra_cost
        parent_accumulator = node.accumulator
        aux_active = self._aux_goal is not None
        parent_aux = node.aux_accumulator
        aux_rate = self._aux_rate
        aux_derived = self._aux_derived_deadline
        parent_remaining_total = state.remaining_total()
        monotonic = self._is_monotonic
        rate = self._rate
        capacity = self._capacity_deadline
        min_startup = self._min_startup_cost
        new_state = SearchState.__new__
        state_cls = SearchState
        set_attr = object.__setattr__

        # Assigned-latency memo key of the parent, maintained incrementally
        # for the non-monotonic goals (see SearchNode.latency_key).
        parent_key = None if monotonic else self._latency_key_of(node)
        order_invariant = self._future_bound_order_invariant
        bound_obj = self._bound_obj

        # Placement edges: only onto the most recently provisioned VM.
        if vms:
            last_vm_type_name, queue = vms[-1]
            vm_index = node.last_vm_index
            if vm_index < 0:
                vm_index = self._vm_id[last_vm_type_name]
            tpl_id = self._tpl_id
            supports_row = self._supports_table[vm_index]
            latency_row = self._latency_table[vm_index]
            run_cost_row = self._run_cost_table[vm_index]
            query_deadlines = self._query_deadlines
            place_actions = self._place_actions
            finish = node.last_vm_finish
            if queue:
                previous = queue[-1]
                previous_index = tpl_id[previous]
                previous_execution = latency_row[previous_index]
                previous_deadline = query_deadlines[previous_index]
            else:
                previous = None
                previous_execution = previous_deadline = 0.0

            for template_name, _ in remaining:
                template_index = tpl_id[template_name]
                if not supports_row[template_index]:
                    continue
                execution_time = latency_row[template_index]

                # -- dominance pruning of redundant queue orders ------------------
                if previous is not None:
                    candidate_deadline = query_deadlines[template_index]
                    if previous_deadline is not None and candidate_deadline is not None:
                        start = finish - previous_execution
                        pair_total = previous_execution + execution_time
                        current_violation = max(0.0, finish - previous_deadline) + max(
                            0.0, start + pair_total - candidate_deadline
                        )
                        swapped_violation = max(
                            0.0, start + execution_time - candidate_deadline
                        ) + max(0.0, start + pair_total - previous_deadline)
                        if swapped_violation < current_violation - 1e-9:
                            continue
                        if abs(swapped_violation - current_violation) <= 1e-9 and (
                            execution_time < previous_execution
                            or (
                                execution_time == previous_execution
                                and template_name < previous
                            )
                        ):
                            continue
                    else:
                        horizon = self._goal.ordering_horizon(queue, template_name)
                        if finish + execution_time <= horizon and (
                            execution_time < previous_execution
                            or (
                                execution_time == previous_execution
                                and template_name < previous
                            )
                        ):
                            continue

                # -- the placement child, with its incremental penalty ------------
                completion = finish + execution_time
                outcomes = node.outcomes + (LatencyOutcome(template_name, completion),)
                if parent_accumulator is not None:
                    accumulator = parent_accumulator.branch()
                    accumulator.add(template_name, completion)
                    penalty = rate * accumulator.violation()
                else:
                    # Externally built nodes fall back to the batch definition.
                    accumulator = None
                    penalty = self._goal.penalty(outcomes)
                # Successor state, built inline (the validity checks of
                # SearchState.with_placement are redundant here) with its
                # remaining-total cache seeded from the parent's.
                child_state = new_state(state_cls)
                set_attr(
                    child_state,
                    "vms",
                    vms[:-1] + ((last_vm_type_name, queue + (template_name,)),),
                )
                set_attr(
                    child_state,
                    "remaining",
                    tuple(
                        [
                            (name, count - 1) if name == template_name else (name, count)
                            for name, count in remaining
                            if name != template_name or count > 1
                        ]
                    ),
                )
                set_attr(child_state, "_remaining_total", parent_remaining_total - 1)
                infra = parent_infra + run_cost_row[template_index]
                child = SearchNode(
                    child_state,
                    node,
                    place_actions[template_index],
                    infra,
                    penalty,
                    outcomes,
                    completion,
                    depth,
                    0.0,
                    accumulator,
                    vm_index,
                )
                if aux_active:
                    if aux_derived is not None:
                        # The old goal differs only by deadline: read its
                        # violation off the child's primary accumulator (the
                        # running mean / sorted list is deadline-independent).
                        if accumulator is not None:
                            child.aux_penalty = (
                                aux_rate
                                * accumulator.violation_for_deadline(aux_derived)
                            )
                    elif parent_aux is not None:
                        # Second accumulator of retraining searches: the old
                        # goal's penalty, maintained copy-on-write exactly like
                        # the primary one (read by AdaptiveBound in O(1)).
                        aux_accumulator = parent_aux.branch()
                        aux_accumulator.add(template_name, completion)
                        child.aux_accumulator = aux_accumulator
                        child.aux_penalty = aux_rate * aux_accumulator.violation()
                # -- inlined f-value (kept in sync with priority()) ---------------
                child_remaining = child_state.remaining
                if not child_remaining:
                    child.priority = infra + penalty
                else:
                    bounds = self._bounds_cache.get(child_remaining)
                    if bounds is None:
                        bounds = self._compute_remaining_bounds(child_remaining)
                    bound = infra + bounds[0]
                    if monotonic:
                        provisioning = 0.0
                        if capacity is not None:
                            slack = capacity - completion
                            overflow = bounds[1] - (slack if slack > 0.0 else 0.0)
                            if overflow > 0:
                                provisioning = _min_provisioning_cost(
                                    overflow, capacity, min_startup, rate
                                )
                        bound += penalty + provisioning
                    else:
                        # One insertion extends the parent's memo key: a bisect
                        # insert keeps order-invariant keys sorted, an append
                        # preserves the exact sequence for the rest.
                        if order_invariant:
                            position = bisect_right(parent_key, completion)
                            child_key = (
                                parent_key[:position]
                                + (completion,)
                                + parent_key[position:]
                            )
                        else:
                            child_key = parent_key + (completion,)
                        child.latency_key = child_key
                        if bound_obj is None:
                            future = self._future_cost_bound(child_key, child_remaining)
                        else:
                            future = bound_obj.placement_bound(
                                self, node, child, completion
                            )
                        child.future_bound = future
                        bound += future
                    child.priority = bound
                successors.append(child)

        # Start-up edges: only when the last VM is non-empty (or none exists),
        # and only if there is still work to assign.
        if remaining and not (vms and not vms[-1][1]):
            outcomes = node.outcomes
            penalty = node.penalty
            bounds = self._bounds_cache.get(remaining)
            if bounds is None:
                bounds = self._compute_remaining_bounds(remaining)
            startup_costs = self._startup_costs
            provision_actions = self._provision_actions
            for vm_index, vm_type_name in enumerate(self._vm_names):
                infra = parent_infra + startup_costs[vm_index]
                child_state = new_state(state_cls)
                set_attr(child_state, "vms", vms + ((vm_type_name, ()),))
                set_attr(child_state, "remaining", remaining)
                set_attr(child_state, "_remaining_total", parent_remaining_total)
                child = SearchNode(
                    child_state,
                    node,
                    provision_actions[vm_index],
                    infra,
                    penalty,
                    outcomes,
                    0.0,
                    depth,
                    0.0,
                    # Shared with the parent: nodes never mutate their
                    # accumulator after construction (placements branch first).
                    parent_accumulator,
                    vm_index,
                )
                if aux_active:
                    # Provisioning places no query: the old-goal penalty (and
                    # any second accumulator) carries over unchanged.
                    child.aux_accumulator = parent_aux
                    child.aux_penalty = node.aux_penalty
                # -- inlined f-value (kept in sync with priority()) ---------------
                bound = infra + bounds[0]
                if monotonic:
                    provisioning = 0.0
                    if capacity is not None:
                        # The fresh VM is empty, so its slack is the full capacity.
                        overflow = bounds[1] - (capacity if capacity > 0.0 else 0.0)
                        if overflow > 0:
                            provisioning = _min_provisioning_cost(
                                overflow, capacity, min_startup, rate
                            )
                    bound += penalty + provisioning
                else:
                    # (outcomes, remaining) are unchanged by a start-up edge, so
                    # under the default bound the parent's future-cost term and
                    # memo key carry over bit-for-bit.  Registered bounds that
                    # read the busy time must recompute (it resets to 0 here).
                    child.latency_key = parent_key
                    if bound_obj is None:
                        future = node.future_bound
                        if future < 0.0:
                            future = self._future_cost_bound(parent_key, remaining)
                    else:
                        future = bound_obj.provision_bound(self, node, child)
                    child.future_bound = future
                    bound += future
                child.priority = bound
                successors.append(child)
        return successors

    # -- edge costs (Equation 2), used by the cost-of-X feature ----------------------

    def placement_edge_cost(self, node: SearchNode, template_name: str) -> float:
        """Weight of the placement edge for *template_name* out of *node*.

        Equation 2: execution time times the VM's rental rate, plus the change
        in penalty caused by the placement.  Returns ``inf`` when the most
        recent VM cannot process the template (or no VM exists yet).  The
        penalty delta is answered by the node's incremental accumulator in
        O(1)/O(log n) instead of re-evaluating the goal over every placement.
        """
        last = node.state.last_vm()
        if last is None:
            return _INF
        vm_index = self._vm_id[last[0]]
        template_index = self._tpl_id.get(template_name)
        if template_index is None:
            # Unknown template: preserve the historical behaviour (the latency
            # model decides whether to raise or estimate).
            vm_type = self._vm_types[last[0]]
            if not vm_type.supports(template_name):
                return _INF
            execution_time = self._latency_model.latency(template_name, vm_type)
            completion = node.last_vm_finish + execution_time
            outcomes = node.outcomes + (LatencyOutcome(template_name, completion),)
            penalty_delta = self._goal.penalty(outcomes) - node.penalty
            return vm_type.running_cost * execution_time + penalty_delta
        if not self._supports_table[vm_index][template_index]:
            return _INF
        execution_time = self._latency_table[vm_index][template_index]
        completion = node.last_vm_finish + execution_time
        accumulator = node.accumulator
        if accumulator is not None:
            penalty_delta = (
                self._rate * accumulator.violation_with(template_name, completion)
                - node.penalty
            )
        else:
            outcomes = node.outcomes + (LatencyOutcome(template_name, completion),)
            penalty_delta = self._goal.penalty(outcomes) - node.penalty
        return self._run_cost_table[vm_index][template_index] + penalty_delta

    def placement_cost_row(
        self, node: SearchNode, template_names: Sequence[str]
    ) -> list[float]:
        """Equation-2 placement edge weights for many templates at once.

        The row variant of :meth:`placement_edge_cost` used by the vectorized
        feature path (:meth:`~repro.learning.features.FeatureExtractor.extract_into`):
        the most-recent-VM lookup, table rows, and accumulator reference are
        resolved once per vertex instead of once per template.  Entries are
        bit-identical to per-template :meth:`placement_edge_cost` calls, with
        ``inf`` marking infeasible placements.
        """
        last = node.state.last_vm()
        if last is None:
            return [_INF] * len(template_names)
        vm_index = self._vm_id[last[0]]
        supports_row = self._supports_table[vm_index]
        latency_row = self._latency_table[vm_index]
        run_cost_row = self._run_cost_table[vm_index]
        tpl_id = self._tpl_id
        finish = node.last_vm_finish
        accumulator = node.accumulator
        rate = self._rate
        node_penalty = node.penalty
        costs: list[float] = []
        for template_name in template_names:
            template_index = tpl_id.get(template_name)
            if template_index is None:
                # Unknown template: defer to the scalar path's fallback.
                costs.append(self.placement_edge_cost(node, template_name))
                continue
            if not supports_row[template_index]:
                costs.append(_INF)
                continue
            completion = finish + latency_row[template_index]
            if accumulator is not None:
                penalty_delta = (
                    rate * accumulator.violation_with(template_name, completion)
                    - node_penalty
                )
            else:
                outcomes = node.outcomes + (LatencyOutcome(template_name, completion),)
                penalty_delta = self._goal.penalty(outcomes) - node_penalty
            costs.append(run_cost_row[template_index] + penalty_delta)
        return costs

    def startup_edge_cost(self, vm_type_name: str) -> float:
        """Weight of a start-up edge for *vm_type_name* (its provisioning fee)."""
        return self._startup_costs[self._vm_id[vm_type_name]]

    # -- heuristics and priorities ----------------------------------------------------

    def _compute_cheapest_execution(self) -> dict[str, float]:
        cheapest: dict[str, float] = {}
        self._cheapest_time: dict[str, float] = {}
        for name in self._counts:
            template_index = self._tpl_id[name]
            costs = []
            times = []
            for vm_index in range(len(self._vm_names)):
                if not self._supports_table[vm_index][template_index]:
                    continue
                costs.append(self._run_cost_table[vm_index][template_index])
                times.append(self._latency_table[vm_index][template_index])
            if not costs:
                raise SpecificationError(
                    f"no VM type in the catalogue supports template {name!r}"
                )
            cheapest[name] = min(costs)
            self._cheapest_time[name] = min(times)
        self._min_startup_cost = min(self._startup_costs)
        self._capacity_deadline = self._penalty_free_capacity()
        return cheapest

    def _penalty_free_capacity(self) -> float | None:
        """Largest busy time a VM can reach before the goal starts penalising.

        Only defined for the deadline-style monotonic goals (max latency and
        per-query deadlines), where any query completing after the relevant
        deadline accrues violation time.  Used by the provisioning lower bound
        below; ``None`` disables that bound.
        """
        if not self._goal.is_monotonic:
            return None
        deadline = getattr(self._goal, "deadline", None)
        if deadline is None or deadline <= 0:
            return None
        deadlines = getattr(self._goal, "deadlines", None)
        if deadlines:
            relevant = [value for value in dict(deadlines).values()]
            if relevant:
                return max(relevant)
        return float(deadline)

    def _compute_remaining_bounds(
        self, remaining: tuple[tuple[str, int], ...]
    ) -> tuple[float, float]:
        """Compute and cache the remaining-multiset bounds (see :meth:`_remaining_bounds`)."""
        execution = sum(
            self._cheapest_execution[name] * count for name, count in remaining
        )
        work = sum(self._cheapest_time[name] * count for name, count in remaining)
        cached = (execution, work)
        self._bounds_cache[remaining] = cached
        return cached

    def _remaining_bounds(
        self, remaining: tuple[tuple[str, int], ...]
    ) -> tuple[float, float]:
        """(Equation-3 bound, cheapest remaining work time) for a remaining multiset.

        Memoized per multiset: the search revisits the same multisets via many
        paths, and the memo keeps each value bit-identical to a fresh
        evaluation (an incremental parent-minus-contribution running value
        would drift in the last float bits and perturb tie-breaking).
        """
        cached = self._bounds_cache.get(remaining)
        if cached is None:
            cached = self._compute_remaining_bounds(remaining)
        return cached

    def remaining_execution_bound(self, state: SearchState) -> float:
        """Equation 3: cheapest possible execution cost of the unassigned queries."""
        return self._remaining_bounds(state.remaining)[0]

    def heuristic(self, state: SearchState) -> float:
        """Admissible cost-to-go estimate for *state*.

        For monotonically increasing goals this is Equation 3; for other goals
        the same quantity is still a valid lower bound on the *infrastructure*
        part of the remaining cost, so it is used as the cost-to-go term while
        the partial penalty is excluded from the node's g-value (see
        :meth:`priority`).
        """
        return self.remaining_execution_bound(state)

    def provisioning_bound(self, node: SearchNode) -> float:
        """Lower bound on the future provisioning-or-penalty cost at *node*.

        For deadline-style goals every VM can absorb at most ``D`` seconds of
        work before its queue starts violating (``D`` being the deadline, or
        the loosest per-template deadline).  If ``W`` seconds of work remain
        and the most recent VM has ``slack`` seconds of headroom, then any
        completion of the schedule with ``k`` additional VMs pays at least
        ``k`` start-up fees plus penalties for the work that does not fit:

            k * f_s  +  rate * max(0, W - slack - k * D)

        Minimising over ``k`` gives an admissible bound on the cost still to be
        paid *beyond* the pure execution cost of Equation 3.  For goals without
        a per-query deadline semantics the bound is zero.
        """
        capacity = self._capacity_deadline
        if capacity is None or not node.state.remaining:
            return 0.0
        remaining_work = self._remaining_bounds(node.state.remaining)[1]
        slack = 0.0
        if node.state.last_vm() is not None:
            slack = max(0.0, capacity - node.last_vm_finish)
        overflow = remaining_work - slack
        if overflow <= 0:
            return 0.0
        return _min_provisioning_cost(
            overflow, capacity, self._min_startup_cost, self._rate
        )

    def _remaining_latency_bounds(
        self, remaining: tuple[tuple[str, int], ...]
    ) -> list[float]:
        """Per-query latency lower bounds of a remaining multiset (memoized).

        Callers must treat the returned list as immutable (the goal hooks only
        read or ``sorted()`` it).
        """
        cached = self._latency_bounds_cache.get(remaining)
        if cached is None:
            cached = []
            for name, count in remaining:
                cached.extend([self._cheapest_time[name]] * count)
            self._latency_bounds_cache[remaining] = cached
        return cached

    def priority(self, node: SearchNode) -> float:
        """A* f-value: a lower bound on the best complete-schedule cost via *node*.

        * Goal vertices use their true cost (infrastructure + penalty).
        * For monotonic goals, internal vertices use
          ``infrastructure + partial penalty + Equation-3 heuristic`` — the
          partial penalty can only grow, so the bound is admissible.
        * For non-monotonic goals the partial penalty is dropped (it may shrink
          as more queries arrive), leaving ``infrastructure + heuristic``,
          which is admissible because penalties are never negative.
        """
        state = node.state
        if state.is_goal():
            return node.partial_cost
        bound = node.infra_cost + self._remaining_bounds(state.remaining)[0]
        if self._is_monotonic:
            bound += node.penalty + self.provisioning_bound(node)
        elif self._bound_obj is None:
            bound += self._future_cost_bound(
                self._latency_key_of(node), state.remaining
            )
        else:
            bound += self._bound_obj.node_bound(self, node)
        return bound

    def _latency_key_of(self, node: SearchNode) -> tuple[float, ...]:
        """The node's assigned-latency memo key, computed once and cached.

        Children built by :meth:`expand` inherit the key incrementally (one
        bisect insertion per placement); this fallback only runs for nodes
        built elsewhere (the initial vertex, runtime contexts, tests).  Goals
        whose bound is permutation-invariant key by the sorted latency
        multiset, the rest by the exact sequence (float sums are
        order-sensitive, and f-values must stay bit-identical).
        """
        key = node.latency_key
        if key is None:
            assigned = tuple(outcome.latency for outcome in node.outcomes)
            if self._future_bound_order_invariant:
                key = tuple(sorted(assigned))
            else:
                key = assigned
            node.latency_key = key
        return key

    def _future_cost_bound(
        self,
        latency_key: tuple[float, ...],
        remaining: tuple[tuple[str, int], ...],
    ) -> float:
        """Memoised non-monotonic future-cost term of the f-value.

        The term depends only on (assigned latencies, remaining multiset);
        provision edges and converging paths revisit the same inputs
        constantly.  ``latency_key`` doubles as the assigned-latency argument
        of the goal hook: for order-invariant goals it is the sorted multiset
        (the hook only reads order statistics, so the value is unchanged), for
        the rest it is the exact placement sequence.
        """
        key = (remaining, latency_key)
        future = self._future_cost_cache.get(key)
        if future is None:
            future = self._goal.future_cost_lower_bound(
                latency_key,
                self._remaining_latency_bounds(remaining),
                self._min_startup_cost,
            )
            self._future_cost_cache[key] = future
        return future

    # -- miscellany ---------------------------------------------------------------------

    def is_goal(self, state: SearchState) -> bool:
        """True when *state* is a goal vertex (complete schedule)."""
        return state.is_goal()

    def total_queries(self) -> int:
        """Number of queries in the workload being scheduled."""
        return sum(self._counts.values())

    def initial_counts(self) -> tuple[tuple[str, int], ...]:
        """Frozen template counts of the workload (canonical order)."""
        return freeze_counts(self._counts)

    def partial_cost_of(self, outcomes: Sequence[LatencyOutcome], infra_cost: float) -> float:
        """Cost of an arbitrary partial schedule description under this goal."""
        return infra_cost + self._goal.penalty(outcomes)
