"""Vertices of the scheduling graph.

A vertex (Section 4.3) couples a *partial schedule* — the VMs provisioned so
far with their template queues — with the multiset of queries still waiting to
be assigned.  Because queries of the same template are interchangeable, the
state only tracks template names; the driver maps templates back to concrete
query instances once the optimal goal vertex is known.

The representation is fully immutable and hashable so that the A* search can
deduplicate states reached via different action orders (one of the redundancy
eliminations that makes the graph search tractable).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping


#: A provisioned VM inside a search state: (vm type name, template queue).
VMState = tuple[str, tuple[str, ...]]


def freeze_counts(counts: Mapping[str, int] | Counter[str]) -> tuple[tuple[str, int], ...]:
    """Canonical, hashable form of a template multiset (zero counts dropped)."""
    return tuple(sorted((name, count) for name, count in counts.items() if count > 0))


@dataclass(frozen=True)
class SearchState:
    """One vertex of the scheduling graph."""

    #: Partial schedule: VMs in provisioning order with their template queues.
    vms: tuple[VMState, ...]
    #: Unassigned queries, as a frozen multiset of template names.
    remaining: tuple[tuple[str, int], ...]

    # -- constructors ----------------------------------------------------------

    @classmethod
    def initial(cls, counts: Mapping[str, int] | Counter[str]) -> "SearchState":
        """The start vertex: nothing provisioned, every query unassigned."""
        return cls(vms=(), remaining=freeze_counts(counts))

    # -- accessors -------------------------------------------------------------

    def remaining_counts(self) -> Counter[str]:
        """The unassigned-template multiset as a mutable counter."""
        return Counter(dict(self.remaining))

    def remaining_total(self) -> int:
        """Number of queries still unassigned."""
        return sum(count for _, count in self.remaining)

    def remaining_templates(self) -> tuple[str, ...]:
        """Distinct template names with at least one unassigned query."""
        return tuple(name for name, _ in self.remaining)

    def has_remaining(self, template_name: str) -> bool:
        """True when at least one query of *template_name* is unassigned."""
        return any(name == template_name for name, _ in self.remaining)

    def is_goal(self) -> bool:
        """True when every query has been assigned (a complete schedule)."""
        return not self.remaining

    def num_vms(self) -> int:
        """Number of VMs provisioned so far."""
        return len(self.vms)

    def last_vm(self) -> VMState | None:
        """The most recently provisioned VM, or ``None`` if there is none."""
        return self.vms[-1] if self.vms else None

    def last_vm_is_empty(self) -> bool:
        """True when the most recent VM exists and has no queries yet."""
        last = self.last_vm()
        return last is not None and not last[1]

    def assigned_total(self) -> int:
        """Number of queries assigned so far."""
        return sum(len(queue) for _, queue in self.vms)

    # -- transitions -----------------------------------------------------------

    def with_new_vm(self, vm_type_name: str) -> "SearchState":
        """Successor state after provisioning an empty VM of *vm_type_name*."""
        return SearchState(vms=self.vms + ((vm_type_name, ()),), remaining=self.remaining)

    def with_placement(self, template_name: str) -> "SearchState":
        """Successor state after placing one *template_name* query on the last VM."""
        if not self.vms:
            raise ValueError("cannot place a query before provisioning a VM")
        counts = self.remaining_counts()
        if counts[template_name] <= 0:
            raise ValueError(f"no unassigned query of template {template_name!r}")
        counts[template_name] -= 1
        vm_type_name, queue = self.vms[-1]
        updated_vm = (vm_type_name, queue + (template_name,))
        return SearchState(
            vms=self.vms[:-1] + (updated_vm,), remaining=freeze_counts(counts)
        )

    # -- cosmetics ---------------------------------------------------------------

    def describe(self) -> str:
        """Compact human-readable rendering (useful in debugging/tests)."""
        vms = "; ".join(f"{vm_type}[{','.join(queue)}]" for vm_type, queue in self.vms)
        remaining = ", ".join(f"{name}x{count}" for name, count in self.remaining)
        return f"vms=({vms}) remaining=({remaining})"


def counts_from_templates(names: Iterable[str]) -> Counter[str]:
    """Counter over template names (convenience for building initial states)."""
    return Counter(names)
