"""Vertices of the scheduling graph.

A vertex (Section 4.3) couples a *partial schedule* — the VMs provisioned so
far with their template queues — with the multiset of queries still waiting to
be assigned.  Because queries of the same template are interchangeable, the
state only tracks template names; the driver maps templates back to concrete
query instances once the optimal goal vertex is known.

The representation is fully immutable and hashable so that the A* search can
deduplicate states reached via different action orders (one of the redundancy
eliminations that makes the graph search tractable).

States deliberately carry *no* cost bookkeeping: everything incremental — the
goal's violation accumulator, the retraining search's auxiliary old-goal
accumulator, memo keys — lives on :class:`~repro.search.problem.SearchNode`,
so two paths reaching the same vertex still compare (and hash) equal here
while each node keeps its own O(1) copy-on-write penalty state.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping


#: A provisioned VM inside a search state: (vm type name, template queue).
VMState = tuple[str, tuple[str, ...]]


def freeze_counts(counts: Mapping[str, int] | Counter[str]) -> tuple[tuple[str, int], ...]:
    """Canonical, hashable form of a template multiset (zero counts dropped)."""
    return tuple(sorted((name, count) for name, count in counts.items() if count > 0))


@dataclass(frozen=True)
class SearchState:
    """One vertex of the scheduling graph.

    :meth:`remaining_total` and :meth:`has_remaining` are called once per A*
    frontier push / expansion, so both are backed by lazily materialised
    caches (a total and a frozenset of names) instead of re-scanning the
    multiset; the caches live in the instance ``__dict__`` and are excluded
    from equality and hashing.
    """

    #: Partial schedule: VMs in provisioning order with their template queues.
    vms: tuple[VMState, ...]
    #: Unassigned queries, as a frozen multiset of template names.
    remaining: tuple[tuple[str, int], ...]

    def __hash__(self) -> int:
        # Same basis as the dataclass-generated hash (the compare fields), but
        # cached: the A* search hashes each state several times (duplicate
        # checks and the visited set), and the nested tuples are not free.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.vms, self.remaining))
            object.__setattr__(self, "_hash", cached)
        return cached

    # -- constructors ----------------------------------------------------------

    @classmethod
    def initial(cls, counts: Mapping[str, int] | Counter[str]) -> "SearchState":
        """The start vertex: nothing provisioned, every query unassigned."""
        return cls(vms=(), remaining=freeze_counts(counts))

    # -- accessors -------------------------------------------------------------

    def remaining_counts(self) -> Counter[str]:
        """The unassigned-template multiset as a mutable counter."""
        return Counter(dict(self.remaining))

    def remaining_total(self) -> int:
        """Number of queries still unassigned (cached on first use)."""
        cached = self.__dict__.get("_remaining_total")
        if cached is None:
            cached = sum(count for _, count in self.remaining)
            object.__setattr__(self, "_remaining_total", cached)
        return cached

    def remaining_templates(self) -> tuple[str, ...]:
        """Distinct template names with at least one unassigned query."""
        return tuple(name for name, _ in self.remaining)

    def has_remaining(self, template_name: str) -> bool:
        """True when at least one query of *template_name* is unassigned."""
        return template_name in self.remaining_name_set()

    def remaining_name_set(self) -> frozenset[str]:
        """Distinct unassigned template names as a set (cached on first use).

        Hot paths that test many templates against one state (the ``have-X``
        feature loop) fetch this once instead of paying a method call per
        template.
        """
        cached = self.__dict__.get("_remaining_names")
        if cached is None:
            cached = frozenset(name for name, _ in self.remaining)
            object.__setattr__(self, "_remaining_names", cached)
        return cached

    def is_goal(self) -> bool:
        """True when every query has been assigned (a complete schedule)."""
        return not self.remaining

    def num_vms(self) -> int:
        """Number of VMs provisioned so far."""
        return len(self.vms)

    def last_vm(self) -> VMState | None:
        """The most recently provisioned VM, or ``None`` if there is none."""
        return self.vms[-1] if self.vms else None

    def last_vm_is_empty(self) -> bool:
        """True when the most recent VM exists and has no queries yet."""
        last = self.last_vm()
        return last is not None and not last[1]

    def assigned_total(self) -> int:
        """Number of queries assigned so far."""
        return sum(len(queue) for _, queue in self.vms)

    # -- transitions -----------------------------------------------------------

    def with_new_vm(self, vm_type_name: str) -> "SearchState":
        """Successor state after provisioning an empty VM of *vm_type_name*."""
        return SearchState(vms=self.vms + ((vm_type_name, ()),), remaining=self.remaining)

    def with_placement(self, template_name: str) -> "SearchState":
        """Successor state after placing one *template_name* query on the last VM."""
        if not self.vms:
            raise ValueError("cannot place a query before provisioning a VM")
        if not self.has_remaining(template_name):
            raise ValueError(f"no unassigned query of template {template_name!r}")
        # `remaining` is already in canonical sorted order, so decrementing one
        # entry in place preserves canonical form without re-sorting.
        remaining = tuple(
            (name, count - 1) if name == template_name else (name, count)
            for name, count in self.remaining
            if name != template_name or count > 1
        )
        vm_type_name, queue = self.vms[-1]
        updated_vm = (vm_type_name, queue + (template_name,))
        return SearchState(vms=self.vms[:-1] + (updated_vm,), remaining=remaining)

    # -- cosmetics ---------------------------------------------------------------

    def describe(self) -> str:
        """Compact human-readable rendering (useful in debugging/tests)."""
        vms = "; ".join(f"{vm_type}[{','.join(queue)}]" for vm_type, queue in self.vms)
        remaining = ", ".join(f"{name}x{count}" for name, count in self.remaining)
        return f"vms=({vms}) remaining=({remaining})"


def counts_from_templates(names: Iterable[str]) -> Counter[str]:
    """Counter over template names (convenience for building initial states)."""
    return Counter(names)
