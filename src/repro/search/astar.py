"""A* search over the scheduling graph (Section 4.3).

The search explores :class:`~repro.search.problem.SearchNode` objects ordered
by an admissible lower bound on the cost of the best complete schedule
reachable through them.  Because a vertex fully determines its partial
schedule (and therefore its cost), the first *goal* vertex popped from the
frontier is a minimum-cost complete schedule.

The implementation supports:

* an optional expansion budget (the training pipeline uses it as a safety
  valve against pathological SLAs);
* an optional *extra lower bound* callback, which is how adaptive A*
  (Section 5) injects the improved heuristic ``h'`` derived from a previously
  solved instance without changing the core search.  The callback is invoked
  once per generated vertex, so it must be cheap: the adaptive bound reads the
  node's auxiliary old-goal accumulator
  (:attr:`~repro.search.problem.SearchNode.aux_penalty`, maintained
  incrementally by :meth:`~repro.search.problem.SchedulingProblem.expand` when
  the problem was built with an ``aux_goal``) instead of re-evaluating the old
  goal over the node's full outcome tuple.

This loop is the **exact default** of the pluggable strategy engine
(:mod:`repro.search.strategy`): :class:`~repro.search.strategy.AStarStrategy`
delegates here verbatim, and the optimality-relaxing strategies (weighted A*,
beam) live next to it in that module, all returning the same
:class:`SearchResult` shape.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.exceptions import SearchBudgetExceeded, SearchError
from repro.search.actions import Action
from repro.search.problem import SchedulingProblem, SearchNode
from repro.search.state import SearchState


def optimality_ratio(cost: float, cost_lower_bound: float | None) -> float:
    """``cost / lower-bound`` with the shared edge-case conventions.

    ``None`` means the result is provably optimal (ratio 1.0); a zero (or
    negative) lower bound means the bound proves nothing, so a zero-cost
    result is exact and any positive cost is unboundedly far (``inf``).  The
    single definition behind :attr:`SearchResult.optimality_ratio` and
    :attr:`~repro.learning.trainer.SampleSolution.optimality_ratio` — the
    two must never drift.
    """
    if cost_lower_bound is None:
        return 1.0
    if cost_lower_bound <= 0.0:
        return 1.0 if cost <= 0.0 else float("inf")
    return cost / cost_lower_bound


@dataclass
class SearchResult:
    """Outcome of one search-strategy run over a scheduling graph."""

    goal_node: SearchNode
    expansions: int
    generated: int
    #: Spec of the strategy that produced the result (``"astar"`` for the
    #: exact default, ``"weighted_astar:1.5"``, ``"beam:32"``, ...).
    strategy: str = "astar"
    #: Sound lower bound on the *true* optimal cost, reported by relaxed
    #: strategies so suboptimality is never silent.  ``None`` means the
    #: result is provably optimal (``cost`` is its own bound).
    cost_lower_bound: float | None = None

    @property
    def cost(self) -> float:
        """Total cost (Equation 1) of the schedule found."""
        return self.goal_node.partial_cost

    @property
    def is_exact(self) -> bool:
        """Whether the result is provably a minimum-cost schedule."""
        return self.cost_lower_bound is None

    @property
    def optimality_ratio(self) -> float:
        """``cost / optimal-lower-bound`` — 1.0 for exact results.

        An upper bound on how far the returned schedule's cost can sit above
        the true optimum; relaxed strategies surface it instead of silently
        degrading (the training pipeline records the worst per-sample value).
        """
        return optimality_ratio(self.cost, self.cost_lower_bound)

    @property
    def goal_state(self) -> SearchState:
        """The goal vertex reached by the search."""
        return self.goal_node.state

    def path(self) -> list[SearchNode]:
        """Nodes from the start vertex to the goal vertex, inclusive."""
        return self.goal_node.path()

    def decisions(self) -> Iterator[tuple[SearchNode, Action]]:
        """(vertex, optimal action taken at that vertex) pairs along the path.

        This is exactly the training signal of Section 4.4: each decision on
        the optimal path is labelled with the features of its origin vertex.
        """
        nodes = self.path()
        for parent, child in zip(nodes, nodes[1:]):
            assert child.action is not None
            yield parent, child.action


def astar_search(
    problem: SchedulingProblem,
    max_expansions: int | None = None,
    extra_lower_bound: Callable[[SearchNode], float] | None = None,
) -> SearchResult:
    """Find a minimum-cost complete schedule for *problem*.

    Parameters
    ----------
    problem:
        The scheduling problem (workload, VM catalogue, goal, latencies).
    max_expansions:
        Abort with :class:`SearchBudgetExceeded` after expanding this many
        vertices.  ``None`` means unbounded.
    extra_lower_bound:
        Optional additional admissible bound; the node priority becomes the
        maximum of the problem's own bound and this callback's value.  Used by
        adaptive A* (Section 5).  Bounds that expose an ``aux_goal`` attribute
        (e.g. :class:`~repro.adaptive.retraining.AdaptiveBound`) should be
        paired with a problem constructed with that auxiliary goal so each
        node carries the old-goal penalty incrementally; the callback then
        runs in O(1) per generated vertex.

    Raises
    ------
    SearchError
        If the graph contains no goal vertex (should not happen for valid input).
    SearchBudgetExceeded
        If the expansion budget is exhausted before a goal vertex is reached.
    """
    start = problem.initial_node()
    if start.state.is_goal():
        return SearchResult(goal_node=start, expansions=0, generated=1)

    counter = 0
    generated = 1
    expansions = 0

    def priority_of(node: SearchNode) -> float:
        priority = node.priority
        if extra_lower_bound is not None:
            priority = max(priority, extra_lower_bound(node))
        return priority

    # Frontier keys: the cost landscape contains large plateaus (many partial
    # schedules share the same lower bound), so ties are broken towards
    # vertices with fewer unassigned queries and, within those, towards the
    # most recently generated vertex (LIFO).  Tie-breaking never affects
    # optimality — the first goal vertex popped still has the minimum f-value —
    # but it turns plateau exploration into a dive towards a goal.
    frontier: list[tuple] = [
        ((priority_of(start), start.state.remaining_total(), 0, start.depth), start)
    ]
    visited: set[SearchState] = set()
    heappush = heapq.heappush
    heappop = heapq.heappop
    expand = problem.expand
    budget = float("inf") if max_expansions is None else max_expansions
    plain = extra_lower_bound is None

    while frontier:
        _, node = heappop(frontier)
        state = node.state
        if state in visited:
            continue
        visited.add(state)

        if not state.remaining:
            return SearchResult(goal_node=node, expansions=expansions, generated=generated)

        expansions += 1
        if expansions > budget:
            raise SearchBudgetExceeded(expansions)

        for child in expand(node):
            child_state = child.state
            if child_state in visited:
                continue
            counter += 1
            generated += 1
            priority = child.priority if plain else priority_of(child)
            heappush(
                frontier,
                (
                    (priority, child_state.remaining_total(), -counter, child.depth),
                    child,
                ),
            )

    raise SearchError("the scheduling graph contains no reachable goal vertex")
