"""Driver for computing optimal (minimum-cost) schedules.

This is the "Optimal Schedule Generation" stage of Figure 4: given a concrete
workload, build the scheduling graph, run A*, and convert the winning goal
vertex back into a :class:`~repro.core.schedule.Schedule` with concrete query
instances.  The same driver doubles as the paper's *Optimal* baseline in the
effectiveness experiments (Figures 9-12, 18, 20-22), since A* with an
admissible heuristic returns exact minimum-cost schedules.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Callable

from repro.cloud.latency import LatencyModel
from repro.cloud.vm import VMTypeCatalog
from repro.core.cost_model import CostBreakdown, CostModel
from repro.core.schedule import Schedule, VMAssignment
from repro.search.astar import SearchResult, astar_search
from repro.search.problem import SchedulingProblem, SearchNode
from repro.search.state import SearchState
from repro.sla.base import PerformanceGoal
from repro.workloads.workload import Workload


def schedule_from_state(
    state: SearchState, workload: Workload, vm_types: VMTypeCatalog
) -> Schedule:
    """Materialise a goal vertex into a schedule over *workload*'s queries.

    Queries of the same template are interchangeable (Section 4.3), so each
    template slot in the goal vertex is filled with the next unused query
    instance of that template, in workload order.
    """
    pools: dict[str, deque] = defaultdict(deque)
    for query in workload:
        pools[query.template_name].append(query)
    vms = []
    for vm_type_name, queue in state.vms:
        vm_type = vm_types[vm_type_name]
        queries = tuple(pools[name].popleft() for name in queue)
        vms.append(VMAssignment(vm_type, queries))
    return Schedule(vms).without_empty_vms()


@dataclass
class OptimalScheduleResult:
    """An optimal schedule together with its cost and search telemetry."""

    schedule: Schedule
    cost: CostBreakdown
    search: SearchResult
    problem: SchedulingProblem

    @property
    def total_cost(self) -> float:
        """Total cost (Equation 1) of the optimal schedule, in cents."""
        return self.cost.total

    @property
    def expansions(self) -> int:
        """Number of vertices the A* search expanded."""
        return self.search.expansions


def find_optimal_schedule(
    workload: Workload,
    vm_types: VMTypeCatalog,
    goal: PerformanceGoal,
    latency_model: LatencyModel,
    max_expansions: int | None = None,
    extra_lower_bound: Callable[[SearchNode], float] | None = None,
) -> OptimalScheduleResult:
    """Compute a minimum-cost schedule for *workload* under *goal*.

    Raises :class:`~repro.exceptions.SearchBudgetExceeded` if *max_expansions*
    is reached before the search completes.
    """
    problem = SchedulingProblem.for_workload(workload, vm_types, goal, latency_model)
    result = astar_search(
        problem, max_expansions=max_expansions, extra_lower_bound=extra_lower_bound
    )
    schedule = schedule_from_state(result.goal_state, workload, vm_types)
    cost = CostModel(latency_model).breakdown(schedule, goal)
    return OptimalScheduleResult(
        schedule=schedule, cost=cost, search=result, problem=problem
    )
