"""Scheduling actions: the edges of the scheduling graph.

Each edge in the scheduling graph (Section 4.3) is one of two actions:

* **provision** a new VM of some type (a "start-up edge"), or
* **place** a query of some template onto the most recently provisioned VM
  (a "placement edge").

Actions are also the *labels* of the decision-tree model: the model's job at
runtime is to choose one of these actions given the current scheduling state,
so the total label domain has size ``|templates| + |VM types|``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class ProvisionVM:
    """Rent a new, empty VM of the given type."""

    vm_type_name: str

    @property
    def label(self) -> str:
        """Canonical string label used as the decision-tree class."""
        return f"provision:{self.vm_type_name}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"new VM ({self.vm_type_name})"


@dataclass(frozen=True)
class PlaceQuery:
    """Place one query of the given template onto the most recent VM."""

    template_name: str

    @property
    def label(self) -> str:
        """Canonical string label used as the decision-tree class."""
        return f"assign:{self.template_name}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"assign {self.template_name}"


#: Either kind of scheduling action.
Action = Union[ProvisionVM, PlaceQuery]


def action_from_label(label: str) -> Action:
    """Inverse of ``action.label`` (used when decoding decision-tree output)."""
    kind, _, payload = label.partition(":")
    if kind == "provision" and payload:
        return ProvisionVM(payload)
    if kind == "assign" and payload:
        return PlaceQuery(payload)
    raise ValueError(f"not a valid action label: {label!r}")
