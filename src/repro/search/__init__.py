"""Scheduling-graph construction and the pluggable search engine (Section 4.3).

The package splits into the graph (``state``/``actions``/``problem``), the
exact A* core (``astar``), and the pluggable layers extracted from it: search
*strategies* (``strategy`` — exact A*, weighted A*, beam) and admissible
*future-cost bounds* for the non-monotonic goals (``bounds`` — the memoized
default and the tighter busy-time-aware bound), both selectable per tenant
through :class:`~repro.config.TrainingConfig`.
"""

from repro.search.actions import Action, PlaceQuery, ProvisionVM, action_from_label
from repro.search.astar import SearchResult, astar_search
from repro.search.bounds import (
    FUTURE_COST_BOUNDS,
    FutureCostBound,
    MemoizedGoalBound,
    TightFutureCostBound,
    create_future_bound,
    register_future_cost_bound,
    registered_future_cost_bounds,
)
from repro.search.optimal import (
    OptimalScheduleResult,
    find_optimal_schedule,
    schedule_from_state,
)
from repro.search.problem import LatencyOutcome, SchedulingProblem, SearchNode
from repro.search.state import SearchState, counts_from_templates, freeze_counts
from repro.search.strategy import (
    SEARCH_STRATEGIES,
    AStarStrategy,
    BeamSearchStrategy,
    SearchStrategy,
    WeightedAStarStrategy,
    register_search_strategy,
    registered_search_strategies,
    strategy_from_spec,
)

__all__ = [
    "Action",
    "AStarStrategy",
    "BeamSearchStrategy",
    "FUTURE_COST_BOUNDS",
    "FutureCostBound",
    "LatencyOutcome",
    "MemoizedGoalBound",
    "OptimalScheduleResult",
    "PlaceQuery",
    "ProvisionVM",
    "SEARCH_STRATEGIES",
    "SchedulingProblem",
    "SearchNode",
    "SearchResult",
    "SearchState",
    "SearchStrategy",
    "TightFutureCostBound",
    "WeightedAStarStrategy",
    "action_from_label",
    "astar_search",
    "counts_from_templates",
    "create_future_bound",
    "find_optimal_schedule",
    "freeze_counts",
    "register_future_cost_bound",
    "register_search_strategy",
    "registered_future_cost_bounds",
    "registered_search_strategies",
    "schedule_from_state",
    "strategy_from_spec",
]
