"""Scheduling-graph construction and A* search for optimal schedules (Section 4.3)."""

from repro.search.actions import Action, PlaceQuery, ProvisionVM, action_from_label
from repro.search.astar import SearchResult, astar_search
from repro.search.optimal import (
    OptimalScheduleResult,
    find_optimal_schedule,
    schedule_from_state,
)
from repro.search.problem import LatencyOutcome, SchedulingProblem, SearchNode
from repro.search.state import SearchState, counts_from_templates, freeze_counts

__all__ = [
    "Action",
    "LatencyOutcome",
    "OptimalScheduleResult",
    "PlaceQuery",
    "ProvisionVM",
    "SchedulingProblem",
    "SearchNode",
    "SearchResult",
    "SearchState",
    "action_from_label",
    "astar_search",
    "counts_from_templates",
    "find_optimal_schedule",
    "freeze_counts",
    "schedule_from_state",
]
