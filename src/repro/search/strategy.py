"""Pluggable search strategies over the scheduling graph.

The model-generation pipeline, the adaptive retrainer, and the evaluation
harness all bottom out in the same search; this module makes that search a
*strategy* — open-list policy, expansion order, and termination rule — chosen
per tenant instead of hard-coded:

``astar`` (the default)
    Exact A*: delegates to :func:`repro.search.astar.astar_search`, the same
    loop every prior release ran, so the default engine is bit-identical
    (f-values, expansions, generated counts, schedules) to the non-pluggable
    core — the golden-scenario digests pin this.

``weighted_astar:W``
    Weighted A* (``W >= 1``): orders the frontier by ``g + W * h`` instead of
    ``g + h``, diving towards goals at the price of optimality.  Because a
    vertex of this graph fully determines its partial schedule (and hence its
    g-value), duplicate detection never discards a cheaper path, and the
    classic guarantee ``cost <= W * optimal`` holds.

``beam:K``
    Depth-synchronous beam search: every layer keeps the ``K`` best vertices
    by (admissible) f-value and expands them together.  Linear-time in the
    workload size; no optimality guarantee.

Relaxed strategies never degrade silently: each
:class:`~repro.search.astar.SearchResult` carries a *sound* lower bound on
the true optimal cost (the minimum admissible f-value over every vertex the
strategy pruned or left unexpanded — one of those vertices sits on an optimal
path, and admissible f-values never overestimate), so
:attr:`~repro.search.astar.SearchResult.optimality_ratio` bounds how far the
returned schedule can be from optimal.  The training pipeline records the
worst per-sample ratio in the model metadata.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

from repro.exceptions import SearchBudgetExceeded, SearchError, SpecificationError
from repro.search.astar import SearchResult, astar_search
from repro.search.problem import SchedulingProblem, SearchNode

_INF = float("inf")


class SearchStrategy(ABC):
    """Protocol every search strategy implements.

    Instances are small frozen dataclasses: stateless across searches,
    picklable (they cross process boundaries inside
    :class:`~repro.learning.trainer.SampleSolver`), and cheap to construct
    from their :attr:`spec` string.
    """

    #: Registry key (set by subclasses).
    name: str = "abstract"
    #: Whether the strategy guarantees a minimum-cost schedule.
    exact: bool = False

    @property
    def spec(self) -> str:
        """Canonical ``name[:param]`` string (round-trips through the registry)."""
        return self.name

    @classmethod
    def from_parameter(cls, parameter: str) -> "SearchStrategy":
        """Build an instance from a spec's ``:parameter`` suffix.

        Parameterized strategies (including externally registered ones)
        override this; the default rejects parameters so bare-name strategies
        fail loudly on ``"name:junk"`` specs.
        """
        raise SpecificationError(
            f"search strategy {cls.name!r} does not accept a parameter "
            f"({parameter!r} given)"
        )

    @abstractmethod
    def search(
        self,
        problem: SchedulingProblem,
        max_expansions: int | None = None,
        extra_lower_bound: Callable[[SearchNode], float] | None = None,
    ) -> SearchResult:
        """Find a complete schedule for *problem* (see the module docstring)."""


@dataclass(frozen=True)
class AStarStrategy(SearchStrategy):
    """Exact A* — the default strategy, bit-identical to the classic core."""

    name = "astar"
    exact = True

    def search(
        self,
        problem: SchedulingProblem,
        max_expansions: int | None = None,
        extra_lower_bound: Callable[[SearchNode], float] | None = None,
    ) -> SearchResult:
        return astar_search(
            problem,
            max_expansions=max_expansions,
            extra_lower_bound=extra_lower_bound,
        )


@dataclass(frozen=True)
class WeightedAStarStrategy(SearchStrategy):
    """Weighted A*: frontier ordered by ``g + weight * h`` (``weight >= 1``)."""

    weight: float = 1.5

    name = "weighted_astar"
    exact = False

    def __post_init__(self) -> None:
        # `not (>= 1)` rather than `< 1` so NaN weights are rejected too.
        if not (self.weight >= 1.0) or self.weight == _INF:
            raise SpecificationError("weighted_astar weight must be a finite value >= 1")

    @classmethod
    def from_parameter(cls, parameter: str) -> "WeightedAStarStrategy":
        return cls(weight=float(parameter))

    @property
    def spec(self) -> str:
        return f"{self.name}:{self.weight:g}"

    def search(
        self,
        problem: SchedulingProblem,
        max_expansions: int | None = None,
        extra_lower_bound: Callable[[SearchNode], float] | None = None,
    ) -> SearchResult:
        start = problem.initial_node()
        if start.state.is_goal():
            return SearchResult(
                goal_node=start, expansions=0, generated=1, strategy=self.spec
            )
        monotonic = problem.goal.is_monotonic
        weight = self.weight

        def admissible_f(node: SearchNode) -> float:
            f = node.priority
            if extra_lower_bound is not None:
                extra = extra_lower_bound(node)
                if extra > f:
                    f = extra
            return f

        def weighted_f(node: SearchNode, f: float) -> float:
            # g is the part of the f-value that is already paid: the full
            # partial cost for monotonic goals, infrastructure only otherwise
            # (the non-monotonic f-value excludes the partial penalty).
            g = node.partial_cost if monotonic else node.infra_cost
            return g + weight * (f - g)

        counter = 0
        generated = 1
        expansions = 0
        start_f = admissible_f(start)
        frontier: list[tuple] = [
            (
                (weighted_f(start, start_f), start.state.remaining_total(), 0, start.depth),
                start_f,
                start,
            )
        ]
        visited: set = set()
        budget = _INF if max_expansions is None else max_expansions

        while frontier:
            _, goal_f, node = heapq.heappop(frontier)
            state = node.state
            if state in visited:
                continue
            visited.add(state)
            if not state.remaining:
                # Sound optimal lower bound: some vertex of an optimal path is
                # still in the frontier (or is this goal); admissible f-values
                # never overestimate, so their minimum bounds optimal from below.
                lower = node.partial_cost
                for _, pending_f, pending in frontier:
                    if pending.state not in visited and pending_f < lower:
                        lower = pending_f
                return SearchResult(
                    goal_node=node,
                    expansions=expansions,
                    generated=generated,
                    strategy=self.spec,
                    # Every pending f-value at or above the goal cost proves
                    # this result optimal — report it as exact (None), so
                    # e.g. adaptive retraining keeps its Lemma-5.1 bound.
                    cost_lower_bound=lower if lower < node.partial_cost else None,
                )
            expansions += 1
            if expansions > budget:
                raise SearchBudgetExceeded(expansions)
            for child in problem.expand(node):
                if child.state in visited:
                    continue
                counter += 1
                generated += 1
                f = admissible_f(child)
                heapq.heappush(
                    frontier,
                    (
                        (
                            weighted_f(child, f),
                            child.state.remaining_total(),
                            -counter,
                            child.depth,
                        ),
                        f,
                        child,
                    ),
                )
        raise SearchError("the scheduling graph contains no reachable goal vertex")


@dataclass(frozen=True)
class BeamSearchStrategy(SearchStrategy):
    """Depth-synchronous beam search of bounded width."""

    width: int = 32

    name = "beam"
    exact = False

    def __post_init__(self) -> None:
        if self.width < 1:
            raise SpecificationError("beam width must be >= 1")

    @classmethod
    def from_parameter(cls, parameter: str) -> "BeamSearchStrategy":
        return cls(width=int(parameter))

    @property
    def spec(self) -> str:
        return f"{self.name}:{self.width}"

    def search(
        self,
        problem: SchedulingProblem,
        max_expansions: int | None = None,
        extra_lower_bound: Callable[[SearchNode], float] | None = None,
    ) -> SearchResult:
        start = problem.initial_node()
        if start.state.is_goal():
            return SearchResult(
                goal_node=start, expansions=0, generated=1, strategy=self.spec
            )

        def admissible_f(node: SearchNode) -> float:
            f = node.priority
            if extra_lower_bound is not None:
                extra = extra_lower_bound(node)
                if extra > f:
                    f = extra
            return f

        counter = 0
        generated = 1
        expansions = 0
        budget = _INF if max_expansions is None else max_expansions
        visited: set = {start.state}
        layer: list[tuple[tuple, SearchNode]] = [
            ((admissible_f(start), start.state.remaining_total(), 0, start.depth), start)
        ]
        best_goal: SearchNode | None = None
        #: Vertices dropped by the width cap, kept as a heap: they back the
        #: optimal lower bound at termination, and they revive the search if
        #: a layer dead-ends before any goal is found (a provisioned VM type
        #: that supports nothing remaining has no successors, and a narrow
        #: beam can fill up with such vertices — the problem is still
        #: feasible, so beam search must backtrack rather than fail).
        reserve: list[tuple[tuple, SearchNode]] = []

        while layer:
            children: list[tuple[tuple, SearchNode]] = []
            for _, node in layer:
                expansions += 1
                if expansions > budget:
                    raise SearchBudgetExceeded(expansions)
                for child in problem.expand(node):
                    child_state = child.state
                    if not child_state.remaining:
                        generated += 1
                        if best_goal is None or child.partial_cost < best_goal.partial_cost:
                            best_goal = child
                        continue
                    if child_state in visited:
                        continue
                    visited.add(child_state)
                    counter += 1
                    generated += 1
                    children.append(
                        (
                            (
                                admissible_f(child),
                                child_state.remaining_total(),
                                -counter,
                                child.depth,
                            ),
                            child,
                        )
                    )
            if len(children) > self.width:
                children.sort(key=lambda entry: entry[0])
                for entry in children[self.width :]:
                    heapq.heappush(reserve, entry)
                children = children[: self.width]
            layer = children
            if not layer and best_goal is None and reserve:
                # Every beam vertex dead-ended: backtrack to the best pruned
                # vertices (completeness on feasible problems; the budget
                # still bounds total work).
                layer = [
                    heapq.heappop(reserve)
                    for _ in range(min(self.width, len(reserve)))
                ]

        if best_goal is None:
            raise SearchError("beam search reached no goal vertex")
        # Sound optimal lower bound: some optimal-path vertex was expanded all
        # the way to the (then best) goal, or still sits in the reserve.
        pruned_min = reserve[0][0][0] if reserve else _INF
        lower = min(best_goal.partial_cost, pruned_min)
        return SearchResult(
            goal_node=best_goal,
            expansions=expansions,
            generated=generated,
            strategy=self.spec,
            cost_lower_bound=lower if lower < best_goal.partial_cost else None,
        )


#: Registered strategies, by name.
SEARCH_STRATEGIES: dict[str, type[SearchStrategy]] = {}


def register_search_strategy(cls: type[SearchStrategy]) -> type[SearchStrategy]:
    """Class decorator adding a strategy to :data:`SEARCH_STRATEGIES`."""
    SEARCH_STRATEGIES[cls.name] = cls
    return cls


register_search_strategy(AStarStrategy)
register_search_strategy(WeightedAStarStrategy)
register_search_strategy(BeamSearchStrategy)


def registered_search_strategies() -> tuple[str, ...]:
    """Names of every registered strategy (registration order)."""
    return tuple(SEARCH_STRATEGIES)


def strategy_from_spec(spec: "str | SearchStrategy") -> SearchStrategy:
    """Resolve a ``name[:param]`` spec (or pass an instance through).

    ``"astar"`` → :class:`AStarStrategy`; ``"weighted_astar:1.5"`` →
    :class:`WeightedAStarStrategy` with that weight; ``"beam:64"`` →
    :class:`BeamSearchStrategy` with that width.  The parameter is optional —
    bare names use the strategy's default.
    """
    if isinstance(spec, SearchStrategy):
        return spec
    name, _, parameter = str(spec).partition(":")
    try:
        cls = SEARCH_STRATEGIES[name]
    except KeyError:
        raise SpecificationError(
            f"unknown search strategy {name!r}; registered: "
            f"{', '.join(SEARCH_STRATEGIES)}"
        ) from None
    if not parameter:
        return cls()
    try:
        return cls.from_parameter(parameter)
    except ValueError as error:
        raise SpecificationError(
            f"invalid parameter in search-strategy spec {spec!r}: {error}"
        ) from None
