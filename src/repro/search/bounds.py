"""Admissible future-cost bounds for the non-monotonic goals (pluggable).

The A* f-value of a vertex under a non-monotonic goal (average latency,
percentile) is ``infrastructure + Equation-3 + future-cost term``: the partial
penalty cannot ride in the g-value (it may shrink as queries arrive), so an
admissible estimate of the *future* penalty-plus-provisioning cost stands in
for it.  This module turns that term into a pluggable component:

* :class:`FutureCostBound` is the engine-facing protocol — per-problem state
  in :meth:`~FutureCostBound.attach`, one hook per edge kind so bounds can
  maintain incremental state on :attr:`~repro.search.problem.SearchNode.bound_state`,
  and a from-scratch :meth:`~FutureCostBound.node_bound` for externally built
  vertices.
* :data:`FUTURE_COST_BOUNDS` is the registry; :func:`create_future_bound`
  instantiates a fresh bound per :class:`~repro.search.problem.SchedulingProblem`
  (bounds carry per-problem memo tables, so instances are never shared).

Two bounds ship:

``memoized`` (the default)
    The goal's own :meth:`~repro.sla.base.PerformanceGoal.future_cost_lower_bound`
    hook, memoised per ``(remaining multiset, assigned-latency key)`` exactly
    as :class:`SchedulingProblem` has always done.  Selecting it by name is
    bit-identical to not selecting anything: the problem keeps its inlined
    fast path and this class simply reads the same memo.

``tight``
    A strictly tighter admissible bound for the percentile and average goals.
    The memoized bound prices the remaining queries as if the most recent VM
    were empty and free; this one additionally charges

    * the most recent VM's **busy time** ``r`` — any remaining query placed on
      it completes no earlier than ``r`` plus its execution time (and with no
      new VM rented, *every* remaining query queues behind ``r``), and
    * a **mandatory start-up fee** when no VM exists at all (the memoized
      bound hands out one free machine even at the root vertex).

    Both corrections only remove impossible completions from the relaxation,
    so admissibility is preserved (property-tested against true optimal costs
    for every goal kind); with ``r = 0`` and a VM present the bound collapses
    to the memoized value exactly.  Per-vertex work is kept O(1)-ish by
    incrementally maintained aggregates: the assigned-side running
    ``(count, sum)`` rides on ``SearchNode.bound_state`` (average goal), the
    sorted assigned latencies are the node's existing
    :attr:`~repro.search.problem.SearchNode.latency_key`, and the
    remaining-side sorted cheapest-time prefix sums are memoised per
    remaining multiset instead of re-deriving rank selections per vertex.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.exceptions import SpecificationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.search.problem import SchedulingProblem, SearchNode

_INF = float("inf")


class FutureCostBound(ABC):
    """Protocol for the non-monotonic future-cost term of the A* f-value.

    One instance serves one :class:`SchedulingProblem`: :meth:`attach` is
    called from the problem's constructor and may precompute tables.  The
    per-edge hooks receive both the parent and the freshly built child so a
    bound can maintain incremental aggregates on the child's
    ``bound_state`` field; every value returned must be an admissible lower
    bound on the penalty-plus-provisioning cost still to come (never more
    than what *any* completion of the child's partial schedule will pay).
    """

    #: Registry key (set by subclasses).
    name: str = "abstract"

    def attach(self, problem: "SchedulingProblem") -> None:
        """Bind the bound to *problem* (precompute per-problem tables)."""

    def initial_state(self, problem: "SchedulingProblem", node: "SearchNode"):
        """Incremental aggregate carried by the start vertex (``None`` = none)."""
        return None

    @abstractmethod
    def placement_bound(
        self,
        problem: "SchedulingProblem",
        parent: "SearchNode",
        child: "SearchNode",
        completion: float,
    ) -> float:
        """Future-cost term of a placement child (may update ``child.bound_state``)."""

    @abstractmethod
    def provision_bound(
        self,
        problem: "SchedulingProblem",
        parent: "SearchNode",
        child: "SearchNode",
    ) -> float:
        """Future-cost term of a provisioning child (busy time resets to 0)."""

    @abstractmethod
    def node_bound(self, problem: "SchedulingProblem", node: "SearchNode") -> float:
        """Future-cost term computed from scratch (externally built vertices)."""


class MemoizedGoalBound(FutureCostBound):
    """The default bound: the goal's own hook, memoised per (remaining, key).

    Delegates to the problem's memo table, so an explicitly selected
    ``"memoized"`` bound returns bit-identical values to the problem's inlined
    default path (the engine keeps that path when no bound object is
    installed; this class exists so the registry is total and the ablation
    benchmarks can sweep it by name).
    """

    name = "memoized"

    def placement_bound(self, problem, parent, child, completion) -> float:
        return problem._future_cost_bound(child.latency_key, child.state.remaining)

    def provision_bound(self, problem, parent, child) -> float:
        # (outcomes, remaining) are unchanged by a start-up edge.
        future = parent.future_bound
        if future < 0.0:
            future = problem._future_cost_bound(
                child.latency_key, child.state.remaining
            )
        return future

    def node_bound(self, problem, node) -> float:
        return problem._future_cost_bound(
            problem._latency_key_of(node), node.state.remaining
        )


class TightFutureCostBound(FutureCostBound):
    """Busy-time- and mandatory-provisioning-aware bound (see module docstring).

    Supported goal kinds: ``average`` and ``percentile``.  Any other
    non-monotonic goal transparently falls back to the memoized behaviour, so
    selecting ``"tight"`` is always safe.
    """

    name = "tight"

    def attach(self, problem) -> None:
        self._problem = problem
        goal = problem.goal
        self._kind = goal.kind if goal.kind in ("average", "percentile") else None
        #: Unsupported goal kinds delegate every hook to the memoized default.
        self._fallback = MemoizedGoalBound() if self._kind is None else None
        self._deadline = getattr(goal, "deadline", 0.0)
        self._percent = getattr(goal, "percent", 0.0)
        self._rate = goal.penalty_rate
        self._min_startup = problem.min_startup_cost
        #: remaining multiset -> (sorted cheapest times, prefix sums) where
        #: ``prefix[k]`` is the sum of the ``k`` shortest remaining times.
        self._aggregates: dict[tuple, tuple[tuple[float, ...], tuple[float, ...]]] = {}
        #: (remaining multiset, machines) -> SPT completion-sum lower bound.
        self._spt: dict[tuple, float] = {}
        #: full memo over the bound's actual inputs.
        self._memo: dict[tuple, float] = {}

    # -- incremental hooks ------------------------------------------------------

    def initial_state(self, problem, node):
        if self._kind == "average":
            return (0, 0.0)
        return None

    def placement_bound(self, problem, parent, child, completion) -> float:
        if self._fallback is not None:
            return self._fallback.placement_bound(problem, parent, child, completion)
        remaining = child.state.remaining
        has_vm = bool(child.state.vms)
        busy = child.last_vm_finish if has_vm else 0.0
        if self._kind == "average":
            state = parent.bound_state
            if state is None:
                state = (len(parent.outcomes), _assigned_sum(parent))
            count, total = state
            child.bound_state = (count + 1, total + completion)
            return self._average_bound(count + 1, total + completion, remaining, busy, has_vm)
        return self._percentile_bound(child.latency_key, remaining, busy, has_vm)

    def provision_bound(self, problem, parent, child) -> float:
        if self._fallback is not None:
            return self._fallback.provision_bound(problem, parent, child)
        child.bound_state = parent.bound_state
        remaining = child.state.remaining
        # The freshly provisioned VM is empty: busy time 0, but a VM now exists.
        if self._kind == "average":
            state = parent.bound_state
            if state is None:
                state = (len(parent.outcomes), _assigned_sum(parent))
            count, total = state
            return self._average_bound(count, total, remaining, 0.0, True)
        return self._percentile_bound(child.latency_key, remaining, 0.0, True)

    def node_bound(self, problem, node) -> float:
        if self._fallback is not None:
            return self._fallback.node_bound(problem, node)
        remaining = node.state.remaining
        has_vm = bool(node.state.vms)
        busy = node.last_vm_finish if has_vm else 0.0
        if self._kind == "average":
            state = node.bound_state
            if state is None:
                state = (len(node.outcomes), _assigned_sum(node))
            count, total = state
            return self._average_bound(count, total, remaining, busy, has_vm)
        return self._percentile_bound(
            problem._latency_key_of(node), remaining, busy, has_vm
        )

    # -- remaining-side aggregates ---------------------------------------------

    def _remaining_aggregates(
        self, problem, remaining: tuple[tuple[str, int], ...]
    ) -> tuple[tuple[float, ...], tuple[float, ...]]:
        cached = self._aggregates.get(remaining)
        if cached is None:
            # One source of truth for "cheapest achievable latency per
            # remaining query": the problem's own memoized per-multiset list.
            times = sorted(problem._remaining_latency_bounds(remaining))
            prefix = [0.0]
            acc = 0.0
            for value in times:
                acc += value
                prefix.append(acc)
            cached = (tuple(times), tuple(prefix))
            self._aggregates[remaining] = cached
        return cached

    def _spt_sum(self, remaining: tuple, times: tuple[float, ...], machines: int) -> float:
        """``P || sum C_j`` lower bound: SPT completion sum on *machines* machines."""
        key = (remaining, machines)
        cached = self._spt.get(key)
        if cached is None:
            n = len(times)
            cached = sum(
                latency * ((n - index - 1) // machines + 1)
                for index, latency in enumerate(times)
            )
            self._spt[key] = cached
        return cached

    # -- the average-latency bound ------------------------------------------------

    def _average_bound(
        self,
        assigned_count: int,
        assigned_total: float,
        remaining: tuple[tuple[str, int], ...],
        busy: float,
        has_vm: bool,
    ) -> float:
        key = (remaining, assigned_count, assigned_total, busy, has_vm)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        times, _ = self._remaining_aggregates(self._problem, remaining)
        n = len(times)
        count = assigned_count + n
        deadline = self._deadline
        rate = self._rate
        min_startup = self._min_startup
        if count == 0:
            self._memo[key] = 0.0
            return 0.0
        if n == 0:
            value = rate * max(0.0, assigned_total / count - deadline)
            self._memo[key] = value
            return value
        best = _INF
        for extra in range(0, n + 1):
            if extra * min_startup >= best:
                break
            if has_vm:
                if extra == 0:
                    # Every remaining query queues behind the busy VM.
                    completion_sum = n * busy + self._spt_sum(remaining, times, 1)
                else:
                    # Either the busy VM takes none of the remaining work
                    # (only the fresh machines run it) or it takes some and at
                    # least one completion is delayed by the full busy time.
                    completion_sum = min(
                        self._spt_sum(remaining, times, extra),
                        busy + self._spt_sum(remaining, times, extra + 1),
                    )
            else:
                if extra == 0:
                    continue  # no machine exists: provisioning is mandatory
                completion_sum = self._spt_sum(remaining, times, extra)
            violation = max(
                0.0, (assigned_total + completion_sum) / count - deadline
            )
            cost = extra * min_startup + rate * violation
            if cost < best:
                best = cost
            if violation == 0.0:
                break
        self._memo[key] = best
        return best

    # -- the percentile bound -------------------------------------------------------

    def _percentile_bound(
        self,
        latency_key: tuple[float, ...],
        remaining: tuple[tuple[str, int], ...],
        busy: float,
        has_vm: bool,
    ) -> float:
        key = (remaining, latency_key, busy, has_vm)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        times, prefix = self._remaining_aggregates(self._problem, remaining)
        n = len(times)
        assigned = latency_key  # sorted: percentile keys are order-invariant
        total = len(assigned) + n
        if total == 0:
            self._memo[key] = 0.0
            return 0.0
        rank = max(1, math.ceil(self._percent / 100.0 * total))
        deadline = self._deadline
        rate = self._rate
        min_startup = self._min_startup
        if n == 0:
            value = rate * max(0.0, assigned[rank - 1] - deadline)
            self._memo[key] = value
            return value
        best = _INF
        for extra in range(0, n + 1):
            if extra * min_startup >= best:
                break
            if not has_vm and extra == 0:
                continue  # no machine exists: provisioning is mandatory
            value = self._rank_statistic(
                assigned, prefix, n, rank, extra, busy, has_vm
            )
            violation = max(0.0, value - deadline)
            cost = extra * min_startup + rate * violation
            if cost < best:
                best = cost
            if violation == 0.0:
                break
        self._memo[key] = best
        return best

    def _rank_statistic(
        self,
        assigned: tuple[float, ...],
        prefix: tuple[float, ...],
        n: int,
        rank: int,
        fresh: int,
        busy: float,
        has_vm: bool,
    ) -> float:
        """The *rank*-th smallest of assigned latencies merged with per-rank
        lower bounds on the remaining completions, for ``fresh`` new machines
        (plus the busy one when present)."""
        num_assigned = len(assigned)
        bound_cache: list[float] = []

        def remaining_rank_bound(i: int) -> float:
            # Lower bound on the i-th smallest remaining completion time.
            while len(bound_cache) < i:
                j = len(bound_cache) + 1
                if not has_vm:
                    value = prefix[-(-j // fresh)]
                else:
                    # k of the j earliest-finishing remaining queries run on
                    # the busy machine: the last of those completes no earlier
                    # than busy + (sum of the k shortest remaining times), the
                    # other j-k spread over the fresh machines.
                    value = prefix[-(-j // fresh)] if fresh >= 1 else _INF
                    for k in range(1, j + 1):
                        on_busy = busy + prefix[k]
                        if on_busy >= value:
                            break
                        rest = j - k
                        if rest == 0:
                            elsewhere = 0.0
                        elif fresh >= 1:
                            elsewhere = prefix[-(-rest // fresh)]
                        else:
                            continue  # nowhere to run the other queries
                        candidate = on_busy if on_busy >= elsewhere else elsewhere
                        if candidate < value:
                            value = candidate
                bound_cache.append(value)
            return bound_cache[i - 1]

        taken_assigned = 0
        taken_remaining = 0
        value = 0.0
        for _ in range(rank):
            a = assigned[taken_assigned] if taken_assigned < num_assigned else _INF
            b = remaining_rank_bound(taken_remaining + 1) if taken_remaining < n else _INF
            if a <= b:
                value = a
                taken_assigned += 1
            else:
                value = b
                taken_remaining += 1
        return value


def _assigned_sum(node: "SearchNode") -> float:
    """Sum of the node's assigned latencies, in placement order.

    Matches the incremental running sum bit-for-bit: both add completions in
    the order the placements happened.
    """
    total = 0.0
    for outcome in node.outcomes:
        total += outcome.latency
    return total


#: Registered future-cost bounds, by name.
FUTURE_COST_BOUNDS: dict[str, type[FutureCostBound]] = {}


def register_future_cost_bound(cls: type[FutureCostBound]) -> type[FutureCostBound]:
    """Class decorator adding a bound to :data:`FUTURE_COST_BOUNDS`."""
    FUTURE_COST_BOUNDS[cls.name] = cls
    return cls


register_future_cost_bound(MemoizedGoalBound)
register_future_cost_bound(TightFutureCostBound)


def registered_future_cost_bounds() -> tuple[str, ...]:
    """Names of every registered bound (registration order)."""
    return tuple(FUTURE_COST_BOUNDS)


def create_future_bound(spec: str) -> FutureCostBound:
    """A fresh bound instance for *spec* (bounds hold per-problem caches)."""
    try:
        cls = FUTURE_COST_BOUNDS[spec]
    except KeyError:
        raise SpecificationError(
            f"unknown future-cost bound {spec!r}; registered: "
            f"{', '.join(FUTURE_COST_BOUNDS)}"
        ) from None
    return cls()
