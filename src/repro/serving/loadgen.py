"""Open-loop load generation for the serving engine.

A closed-loop driver (submit, wait for the answer, submit again) hides
overload: when the system slows down, the driver slows down with it and the
measured latency stays flat.  The serving benchmarks therefore drive the
engine **open loop**: arrivals follow a pre-drawn schedule (see
:mod:`repro.workloads.arrivals`) replayed at a target offered rate regardless
of how fast decisions come back.  When the engine falls behind, the driver
does not sleep — it submits late arrivals immediately and counts them — so
queue growth, backpressure, and tail latency show up in the measurements
instead of being absorbed by the driver.

Epoch integrity: streams are replayed in global ``(arrival_time, tenant,
query id)`` order and the driver only pauses between *strictly increasing*
timestamps, never between two same-timestamp submissions of one tenant.
Together with the engine's blocked-putter accounting this guarantees each
same-timestamp group still lands in a single scheduling epoch — the property
the equivalence suite leans on.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.exceptions import SpecificationError
from repro.serving.engine import ServingEngine
from repro.workloads.query import Query
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class TenantStream:
    """One tenant's arrival schedule (a workload with arrival times set)."""

    tenant: str
    workload: Workload


@dataclass(frozen=True)
class LoadReport:
    """What an open-loop drive actually did, wall-clock-wise."""

    #: Queries offered across all streams.
    submitted: int
    #: Queries refused by the shed backpressure policy during the drive.
    shed: int
    #: Arrivals submitted behind their scheduled time — every member of a
    #: same-timestamp group whose due time had already passed when the group
    #: came up, not one tick per group (the engine, not the driver, was the
    #: bottleneck).
    late: int
    #: Offered rate implied by the replayed schedule (arrivals/sec), or
    #: ``None`` for a firehose drive: no ``target_rate``, or a schedule whose
    #: arrivals share one timestamp (zero span — nothing to pace against).
    offered_rate: float | None
    #: Wall-clock seconds spent submitting (the open-loop phase).
    submit_seconds: float
    #: Wall-clock seconds until every admitted query was decided.
    total_seconds: float
    #: Decisions per wall-clock second, end to end (admitted / total).
    sustained_rate: float

    @property
    def utilization(self) -> float | None:
        """``sustained_rate / offered_rate`` for a paced drive, else ``None``.

        A paced drive's raw throughput is bounded by the offered rate — the
        driver *waits* between arrivals — so reporting ``sustained_rate``
        alone makes an under-loaded endpoint look slower than an overloaded
        one.  Utilization is the honest number: ~1.0 means the engine kept up
        with everything that was offered; firehose drives (no pacing) have no
        offered rate to compare against and report ``None``.
        """
        if self.offered_rate is None or self.offered_rate <= 0:
            return None
        return self.sustained_rate / self.offered_rate


def merge_streams(streams: list[TenantStream]) -> list[tuple[float, str, Query]]:
    """All arrivals in replay order: ``(arrival_time, tenant, query id)``.

    Sorting by tenant *within* a timestamp keeps each tenant's same-timestamp
    group contiguous, so the driver never interleaves another tenant's
    submissions into the middle of an epoch.
    """
    merged = [
        (query.arrival_time, stream.tenant, query)
        for stream in streams
        for query in stream.workload
    ]
    merged.sort(key=lambda entry: (entry[0], entry[1], entry[2].query_id))
    return merged


async def drive(
    engine: ServingEngine,
    streams: list[TenantStream],
    target_rate: float | None = None,
    yield_every: int = 64,
) -> LoadReport:
    """Replay *streams* into *engine* open loop, then drain and report.

    ``target_rate`` rescales the schedule to the given total offered
    arrivals/sec (``None`` replays as fast as possible — a firehose — while
    still yielding to the workers every ``yield_every`` submissions at epoch
    boundaries so decisions interleave with admission).
    """
    if target_rate is not None and target_rate <= 0:
        raise SpecificationError("target_rate must be positive")
    if yield_every < 1:
        raise SpecificationError("yield_every must be at least 1")
    arrivals = merge_streams(streams)
    offered_rate: float | None = None
    scale = 0.0
    if arrivals and target_rate is not None:
        span = arrivals[-1][0] - arrivals[0][0]
        if span > 0:
            # Only a schedule with an actual span can be paced; single-
            # timestamp schedules run firehose and must report it as such.
            scale = (len(arrivals) / span) / target_rate
            offered_rate = target_rate
    shed = late = since_yield = 0
    first_time = arrivals[0][0] if arrivals else 0.0
    previous_time = first_time
    # Whether the group currently being submitted came up past its due time.
    # Lateness is decided once per group, at the pacing boundary, and then
    # charged to every member: a raw per-arrival clock check would flag
    # punctual groups too (asyncio.sleep wakes microseconds after the due
    # time).  The first group's due time is the drive start itself, so it is
    # punctual by construction.
    behind = False
    started = time.perf_counter()
    for arrival_time, tenant, query in arrivals:
        if arrival_time > previous_time:
            # A strictly later timestamp: every pending same-timestamp group
            # is complete, so this is the only place pausing is allowed.
            if scale > 0.0:
                due = started + (arrival_time - first_time) * scale
                delay = due - time.perf_counter()
                if delay > 0:
                    behind = False
                    await asyncio.sleep(delay)
                else:
                    behind = True
            elif since_yield >= yield_every:
                since_yield = 0
                await asyncio.sleep(0)
            previous_time = arrival_time
        if behind:
            late += 1
        admission = await engine.submit(tenant, query)
        since_yield += 1
        if not admission.admitted:
            shed += 1
    submit_seconds = time.perf_counter() - started
    await engine.drain()
    total_seconds = time.perf_counter() - started
    admitted = len(arrivals) - shed
    return LoadReport(
        submitted=len(arrivals),
        shed=shed,
        late=late,
        offered_rate=offered_rate,
        submit_seconds=submit_seconds,
        total_seconds=total_seconds,
        sustained_rate=admitted / total_seconds if total_seconds > 0 else 0.0,
    )
