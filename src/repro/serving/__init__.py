"""Async multi-tenant serving front end over :class:`~repro.service.WiSeDBService`.

This package is the serving layer the ROADMAP's north star calls for: it
turns the library-shaped service into a long-lived endpoint that multiplexes
many tenants on one event loop, funnels each tenant's arrivals through its
online scheduler's epoch-batching path, applies explicit backpressure, and
exposes health and metrics.

* :class:`ServingEngine` — the front end: per-tenant lanes (bounded admission
  queue + worker task + incremental
  :class:`~repro.runtime.online.OnlineSession`), ``block``/``shed``
  backpressure, sticky degraded fallback, single-writer tenant guards, and a
  bit-identical-to-``OnlineScheduler.run`` decision stream;
* :class:`ServingMetrics` / :class:`TenantMetrics` — observability snapshots
  (per-tenant decision p50/p99, queue depth, admitted/shed/degraded counters,
  epochs, retrains) plus :meth:`ServingEngine.health`;
* :func:`drive` / :class:`TenantStream` / :class:`LoadReport` — the open-loop
  workload driver behind ``benchmarks/bench_serving.py``, replaying seeded
  arrival processes (:mod:`repro.workloads.arrivals`) at a target offered
  rate regardless of response times;
* :class:`ShardedServingEngine` — the multi-process router: tenants
  partitioned across forked per-shard engines by :func:`shard_of`, models
  shipped zero-copy through :mod:`repro.learning.shm`, per-shard snapshots
  merged by :func:`merge_metrics`, bit-identical outcomes for any shard
  count.
"""

from repro.serving.engine import (
    Admission,
    ServingDecision,
    ServingEngine,
    ServingTicket,
)
from repro.serving.loadgen import LoadReport, TenantStream, drive, merge_streams
from repro.serving.metrics import (
    ServingMetrics,
    TenantMetrics,
    merge_metrics,
    percentile,
)
from repro.serving.sharded import ShardedServingEngine, shard_of

__all__ = [
    "Admission",
    "LoadReport",
    "ServingDecision",
    "ServingEngine",
    "ServingMetrics",
    "ServingTicket",
    "ShardedServingEngine",
    "TenantMetrics",
    "TenantStream",
    "drive",
    "merge_metrics",
    "merge_streams",
    "percentile",
    "shard_of",
]
