"""Observability surface of the serving engine.

Snapshots are plain frozen dataclasses assembled on demand from the engine's
per-tenant lanes — taking one never blocks the decision path, and the hot
counters the lanes maintain are single ints/floats appended per decision.

The counter identities the accounting tests pin::

    submitted == admitted + shed
    admitted  == decided + failed + in_flight
    in_flight == queue_depth + pending_epoch

``decided`` includes degraded decisions (they *are* answers, served by the
FFD fallback and stamped with a reason); ``failed`` counts queries whose lane
refused to answer because degradation is disabled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.exceptions import SpecificationError


def percentile(values: list[float], fraction: float) -> float:
    """The *fraction*-quantile of *values* (nearest-rank; NaN when empty)."""
    if not values:
        return math.nan
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class TenantMetrics:
    """One tenant lane's counters and decision-latency percentiles."""

    tenant: str
    #: Queries offered to :meth:`ServingEngine.submit` for this tenant.
    submitted: int
    #: Queries accepted into the admission queue.
    admitted: int
    #: Queries refused by the ``shed`` backpressure policy (with reasons).
    shed: int
    #: Queries answered with a placement (learned or degraded).
    decided: int
    #: Decided queries that were served by the degraded FFD fallback.
    degraded: int
    #: Queries the lane could not answer (degradation disabled).
    failed: int
    #: Queries currently waiting in the admission queue.
    queue_depth: int
    #: Queries admitted but not yet decided (queue + pending epoch).
    in_flight: int
    #: Scheduling events decided (same-timestamp arrivals share one epoch).
    epochs: int
    #: Model retrainings triggered by accumulated waits.
    retrains: int
    #: Wait-bucket cache hits on the decision path.
    cache_hits: int
    #: Decision latency percentiles over the lane's recent window, in seconds
    #: (submission to decision; NaN until the first decision).
    decision_p50: float
    decision_p99: float
    #: Sticky degradation reason (``None`` while the learned path is healthy).
    degraded_reason: str | None = None

    def check_identities(self) -> None:
        """Raise ``AssertionError`` unless the counter identities hold."""
        assert self.submitted == self.admitted + self.shed, self
        assert self.admitted == self.decided + self.failed + self.in_flight, self


@dataclass(frozen=True)
class ServingMetrics:
    """A whole-engine snapshot: health plus one entry per tenant lane."""

    status: str
    tenants: tuple[TenantMetrics, ...] = field(default_factory=tuple)
    #: Pipelined-admission counters, maintained by the sharded router's
    #: per-shard outboxes (always zero for a single-process engine): frames
    #: sent to shard workers, and queries those frames carried.  Every batch
    #: carrying more than one query is a pipe round trip the pre-batched
    #: request/reply protocol would have paid — see :attr:`rtts_saved`.
    batches_sent: int = 0
    batched_queries: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Queries per submit-batch frame (NaN before the first frame)."""
        if self.batches_sent == 0:
            return math.nan
        return self.batched_queries / self.batches_sent

    @property
    def rtts_saved(self) -> int:
        """Pipe round trips the batched protocol avoided (vs one per query)."""
        return max(0, self.batched_queries - self.batches_sent)

    def tenant(self, name: str) -> TenantMetrics:
        """The snapshot entry for *name* (raises ``KeyError`` if absent)."""
        for entry in self.tenants:
            if entry.tenant == name:
                return entry
        raise KeyError(name)

    @property
    def submitted(self) -> int:
        return sum(entry.submitted for entry in self.tenants)

    @property
    def admitted(self) -> int:
        return sum(entry.admitted for entry in self.tenants)

    @property
    def shed(self) -> int:
        return sum(entry.shed for entry in self.tenants)

    @property
    def decided(self) -> int:
        return sum(entry.decided for entry in self.tenants)

    @property
    def degraded(self) -> int:
        return sum(entry.degraded for entry in self.tenants)

    @property
    def failed(self) -> int:
        return sum(entry.failed for entry in self.tenants)

    @property
    def epochs(self) -> int:
        return sum(entry.epochs for entry in self.tenants)

    @property
    def retrains(self) -> int:
        return sum(entry.retrains for entry in self.tenants)

    def merged_with(self, *others: "ServingMetrics") -> "ServingMetrics":
        """Convenience chaining form of :func:`merge_metrics`."""
        return merge_metrics([self, *others])

    def describe(self) -> str:
        """A compact multi-line human-readable rendering."""
        lines = [
            f"serving status={self.status} tenants={len(self.tenants)} "
            f"submitted={self.submitted} decided={self.decided} "
            f"shed={self.shed} degraded={self.degraded}"
        ]
        if self.batches_sent:
            lines.append(
                f"  pipe: batches={self.batches_sent} "
                f"mean_batch={self.mean_batch_size:.1f} "
                f"rtts_saved={self.rtts_saved}"
            )
        for entry in self.tenants:
            p50 = "-" if math.isnan(entry.decision_p50) else f"{entry.decision_p50 * 1e3:.2f}ms"
            p99 = "-" if math.isnan(entry.decision_p99) else f"{entry.decision_p99 * 1e3:.2f}ms"
            line = (
                f"  {entry.tenant}: decided={entry.decided}/{entry.submitted} "
                f"epochs={entry.epochs} retrains={entry.retrains} "
                f"shed={entry.shed} degraded={entry.degraded} "
                f"queue={entry.queue_depth} p50={p50} p99={p99}"
            )
            if entry.degraded_reason:
                line += f" [{entry.degraded_reason}]"
            lines.append(line)
        return "\n".join(lines)


#: Engine-status precedence used when merging per-shard snapshots.
_STATUS_ORDER = ("failed", "closed", "overloaded", "degraded", "ok")


def merge_metrics(
    snapshots: Sequence[ServingMetrics], closed: bool | None = None
) -> ServingMetrics:
    """Merge per-shard snapshots into one engine-wide :class:`ServingMetrics`.

    Shards own disjoint tenant sets, so the merge is pure concatenation —
    every per-tenant entry (and therefore every counter identity
    ``check_identities`` pins) is preserved verbatim, even when one shard is
    mid-drain or blocked admitting while another is snapshotted.  A tenant
    appearing in two snapshots means the router misrouted and is refused.

    The merged status takes the worst per-shard status under the single-
    engine precedence (``failed`` > ``closed`` > ``overloaded`` > ``degraded``
    > ``ok``); pass ``closed`` to override the closed-ness of the merged
    engine (a router knows whether *it* closed, individual shards may lag).
    """
    if not snapshots:
        return ServingMetrics(status="closed" if closed else "ok")
    entries: list[TenantMetrics] = []
    seen: set[str] = set()
    for snapshot in snapshots:
        for entry in snapshot.tenants:
            if entry.tenant in seen:
                raise SpecificationError(
                    f"tenant {entry.tenant!r} appears in more than one shard "
                    "snapshot; shards must own disjoint tenant sets"
                )
            seen.add(entry.tenant)
            entries.append(entry)
    statuses = {snapshot.status for snapshot in snapshots}
    unknown = statuses.difference(_STATUS_ORDER)
    if unknown:
        raise SpecificationError(f"cannot merge unknown engine statuses {unknown}")
    if closed is True:
        statuses.add("closed")
    elif closed is False:
        statuses.discard("closed")
    status = next(
        (candidate for candidate in _STATUS_ORDER if candidate in statuses), "ok"
    )
    return ServingMetrics(
        status=status,
        tenants=tuple(entries),
        batches_sent=sum(snapshot.batches_sent for snapshot in snapshots),
        batched_queries=sum(snapshot.batched_queries for snapshot in snapshots),
    )
