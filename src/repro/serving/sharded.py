"""Shared-memory sharded serving: one :class:`ServingEngine` per core.

:class:`ShardedServingEngine` is a router in front of N *shards*.  Tenants
are partitioned across shards by a deterministic hash of the tenant id
(:func:`shard_of` — stable across processes and runs, unlike salted
``hash()``), and each shard runs a full single-process
:class:`~repro.serving.engine.ServingEngine` — its own event loop, lanes,
epoch batching, backpressure, and degraded fallback — in a forked worker
process speaking a small request/reply protocol over a ``multiprocessing``
pipe.

**Models ship zero-copy.**  A tenant's trained model is serialized once at
registration (the registry's pinned ``to_dict``/``from_dict`` round trip,
which restores bit-identical schedulers), but the inference hot path does not
run on the round-tripped tree: the parent packs its
:class:`~repro.learning.decision_tree.CompiledTreeEvaluator` — five flat
parallel arrays — into a ``multiprocessing.shared_memory`` segment
(:mod:`repro.learning.shm`) and every worker attaches read-only views, so N
shards cost one copy of the arrays plus O(1) heap per attachment instead of
N unpickled trees.

**Bit-identical for any shard count.**  Tenant lanes are fully independent
in the single-process engine — no cross-tenant state — so partitioning them
across processes cannot change any tenant's decision stream.  Shipping is
bit-identity-preserving (round-trip tests pin it; the shared evaluator *is*
the parent's arrays), and per-tenant arrival order is preserved because the
router awaits each admission.  The equivalence suite locks
``shards ∈ {1, 2, 4}`` against ``OnlineScheduler.run`` for every goal kind
and catalog.

**Fallback discipline.**  Mirroring
:class:`~repro.parallel.backend.ProcessPoolBackend`, the router prefers a
``fork`` multiprocessing context, falls back to the platform default, and —
when process spawn or shared memory is unavailable (``isolation="auto"``) —
degrades to *inline* shards: the same routing over in-process
``ServingEngine`` partitions, with the reason recorded in
:attr:`ShardedServingEngine.fallback_reason`.  ``shards=1`` in auto mode is
exactly the existing single-process engine.  This is also what makes the
whole surface testable on a 1-core CI container.

**Observability and history.**  ``metrics()`` merges per-shard snapshots
with :func:`~repro.serving.metrics.merge_metrics` — tenant entries are
concatenated verbatim, so the counter identities hold mid-drain even while
one shard is blocked admitting.  At ``close()`` every shard prices its lanes
locally (with per-shard history logging disabled) and the router writes all
run-history rows itself, ordered deterministically by tenant name.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import multiprocessing
import os
import pickle
import warnings
from contextlib import ExitStack
from dataclasses import dataclass

from repro.core.scheduler import SchedulingOutcome
from repro.exceptions import SpecificationError, TrainingError, WiSeDBError
from repro.learning import shm
from repro.learning.trainer import TrainingResult
from repro.runtime.online import OnlineOptimizations
from repro.service.service import Tenant, TenantSpec, WiSeDBService
from repro.serving.engine import _ADMITTED, Admission, BACKPRESSURE_POLICIES, ServingEngine
from repro.serving.metrics import ServingMetrics, merge_metrics
from repro.workloads.query import Query

#: How shards are hosted: ``process`` (forked workers), ``inline``
#: (in-process engine partitions), or ``auto`` (process when the platform
#: supports it and more than one shard was asked for).
ISOLATION_MODES = ("auto", "process", "inline")

#: Seconds to wait for a worker process to exit after its pipe closes.
_JOIN_TIMEOUT = 10.0


def shard_of(tenant: str, shards: int) -> int:
    """Deterministic tenant-id routing, stable across processes and runs.

    ``hash()`` is salted per process, so the router hashes the UTF-8 tenant
    name through sha256 instead — the same tenant always lands on the same
    shard, which is what keeps per-tenant arrival order (and therefore the
    decision stream) independent of the shard count.
    """
    if shards < 1:
        raise SpecificationError("shard count must be at least 1")
    digest = hashlib.sha256(tenant.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


def _pickle_error(error: BaseException):
    """An exception as pipe-safe bytes (falls back to its rendering)."""
    try:
        blob = pickle.dumps(error)
        pickle.loads(blob)  # some exceptions pickle but refuse to unpickle
    except Exception:
        return f"{type(error).__name__}: {error}"
    return blob


def _unpickle_error(blob) -> BaseException:
    if isinstance(blob, bytes):
        try:
            error = pickle.loads(blob)
        except Exception:
            return WiSeDBError("shard worker failed with an unpicklable error")
        if isinstance(error, BaseException):
            return error
    if isinstance(blob, str):
        return WiSeDBError(blob)
    return WiSeDBError(f"shard worker failed: {blob!r}")


def _lane_states(engine: ServingEngine) -> dict[str, tuple[str, object]]:
    """Each lane's terminal state, for the router's ``outcome()`` semantics."""
    states: dict[str, tuple[str, object]] = {}
    for name, lane in engine._lanes.items():
        if lane.failure is not None:
            states[name] = ("failed", lane.failure)
        elif lane.session is None:
            states[name] = ("degraded", lane.degraded_reason)
        else:
            states[name] = ("ok", None)
    return states


# -- the worker side ---------------------------------------------------------------


@dataclass(frozen=True)
class _ShardConfig:
    """Engine parameters a worker needs to mirror the router's settings."""

    index: int
    queue_limit: int
    backpressure: str
    wait_resolution: float
    optimizations: OnlineOptimizations | None
    degraded_fallback: bool


class _ShardService(WiSeDBService):
    """Worker-side service: models are shipped in, never trained locally.

    The parent trains (or fails to train) each tenant once and ships the
    result — or the pickled training error, so a degraded lane's sticky
    reason string is bit-identical to the single-process engine's.  Wait-
    triggered *retraining* inside a lane still runs locally through the
    tenant's generator, exactly as it does in-process.
    """

    def __init__(self, degraded_fallback: bool) -> None:
        super().__init__(degraded_fallback=degraded_fallback)
        self._shipped: dict[str, object] = {}

    def adopt(self, spec: TenantSpec, shipped: object) -> None:
        self._tenants[spec.name] = Tenant(spec, backend_factory=lambda: self.backend)
        self._shipped[spec.name] = shipped

    def train(self, name: str, mode: str = "auto") -> TrainingResult:
        tenant = self.tenant(name)
        if tenant.training is not None:
            return tenant.training
        shipped = self._shipped.get(name)
        if isinstance(shipped, BaseException):
            raise shipped
        if not isinstance(shipped, TrainingResult):
            raise TrainingError(
                f"no training result was shipped for tenant {name!r}"
            )
        tenant.training = shipped
        tenant.provenance = "shipped"
        return shipped


def _register_shipment(
    service: _ShardService, payload: dict, attachments: list
) -> None:
    """Adopt one tenant from the router's registration payload."""
    spec = TenantSpec.from_dict(payload["spec"], n_jobs=1)
    kind, blob = payload["training"]
    if kind == "error":
        service.adopt(spec, _unpickle_error(blob))
        return
    result = TrainingResult.from_dict(blob, n_jobs=1)
    segment = payload["evaluator"]
    if segment is not None:
        evaluator, view = shm.attach_evaluator(segment)
        attachments.append(view)
        result.model.use_evaluator(evaluator)
    service.adopt(spec, result)


async def _shard_worker_loop(connection, config: _ShardConfig) -> None:
    """One worker: a full ServingEngine driven by pipe requests.

    Request ordering matters: ``submit``/``drain``/``close`` are funneled
    through a single pump task so same-tenant arrivals keep their order even
    when a full queue blocks admission (concurrent submit tasks could be
    overtaken by a later ``put_nowait`` when the queue drains).  ``register``
    and ``metrics`` are answered directly from the receive loop — which is
    what keeps snapshots (and their counter identities) available while the
    pump is blocked admitting.
    """
    loop = asyncio.get_running_loop()
    service = _ShardService(degraded_fallback=config.degraded_fallback)
    engine = ServingEngine(
        service,
        queue_limit=config.queue_limit,
        backpressure=config.backpressure,
        wait_resolution=config.wait_resolution,
        optimizations=config.optimizations,
        log_outcomes=False,
    )
    attachments: list = []
    requests: asyncio.Queue = asyncio.Queue()
    #: Lanes whose epoch is held open between pipe round-trips (see below).
    holds: dict[str, object] = {}

    def reply(request_id: int, kind: str, body) -> None:
        connection.send((request_id, (kind, body)))

    def release_holds() -> None:
        for lane in holds.values():
            lane.blocked_putters -= 1
        holds.clear()

    async def pump() -> None:
        while True:
            item = await requests.get()
            if item is None:
                return
            request_id, command, payload = item
            try:
                if command == "submit":
                    tenant, queries = payload
                    # Hold the lane's epoch open across pipe round-trips.
                    # The router awaits every admission reply, so between two
                    # same-timestamp submits the lane worker sees an idle
                    # queue and would close the epoch early — splitting what
                    # an in-process burst (and ``OnlineScheduler.run``) parses
                    # as ONE epoch.  Pinning ``blocked_putters`` (the same
                    # signal an in-process submitter blocked on a full queue
                    # emits) disables only that idle flush: epochs are decided
                    # purely by the timestamp watermark until drain or close,
                    # which is exactly the direct run's grouping.
                    lane = engine._lane(tenant)
                    if tenant not in holds:
                        holds[tenant] = lane
                        lane.blocked_putters += 1
                    admissions = []
                    for query in queries:
                        admission = await engine.submit(tenant, query)
                        admissions.append((admission.admitted, admission.shed_reason))
                    reply(request_id, "admissions", admissions)
                elif command == "drain":
                    # Flush the epochs the holds kept open (the lane worker's
                    # own idle flush, run from here because the workers are
                    # parked on empty queues); queued leftovers are decided by
                    # the workers themselves once the join below runs them.
                    release_holds()
                    for lane in engine._lanes.values():
                        if (
                            lane.pending
                            and lane.queue.empty()
                            and lane.blocked_putters == 0
                        ):
                            engine._decide(lane)
                    await engine.drain()
                    reply(request_id, "ok", None)
                elif command == "close":
                    release_holds()
                    await engine.close()
                    outcomes = engine.collect_outcomes()
                    states = _lane_states(engine)
                    try:
                        reply(request_id, "closed", (outcomes, states))
                    except Exception as error:
                        reply(
                            request_id,
                            "closed",
                            ({}, {}, f"unshippable close payload: {error}"),
                        )
            except BaseException as error:
                reply(request_id, "error", _pickle_error(error))
                if not isinstance(error, Exception):
                    raise

    pump_task = loop.create_task(pump(), name=f"wisedb-shard-{config.index}-pump")
    try:
        while True:
            try:
                message = await loop.run_in_executor(None, connection.recv)
            except (EOFError, OSError):
                break
            request_id, command, payload = message
            if command == "shutdown":
                # Explicit, because EOF cannot be relied on: shards forked
                # later inherit duplicates of this pipe's parent end, so the
                # router closing its copy does not close the channel.
                break
            if command == "register":
                try:
                    _register_shipment(service, payload, attachments)
                except BaseException as error:
                    reply(request_id, "error", _pickle_error(error))
                else:
                    reply(request_id, "ok", None)
            elif command == "metrics":
                snapshot = engine.metrics()
                reply(request_id, "metrics", snapshot)
            else:
                requests.put_nowait((request_id, command, payload))
    finally:
        requests.put_nowait(None)
        await pump_task
        if not engine.closed:
            await engine.close()
        for view in attachments:
            view.close()


def _shard_worker_main(connection, config: _ShardConfig) -> None:
    try:
        asyncio.run(_shard_worker_loop(connection, config))
    except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover - parent gone
        pass
    finally:
        try:
            connection.close()
        except OSError:  # pragma: no cover
            pass


# -- the router's shard handles ----------------------------------------------------


class _ProcessShard:
    """Router-side handle on one forked worker: pipe, reader task, futures."""

    kind = "process"

    def __init__(self, index: int, context, config: _ShardConfig) -> None:
        self.index = index
        parent_end, child_end = context.Pipe()
        self._process = context.Process(
            target=_shard_worker_main,
            args=(child_end, config),
            daemon=True,
            name=f"wisedb-shard-{index}",
        )
        self._process.start()
        child_end.close()
        self._connection = parent_end
        self._pending: dict[int, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._send_lock = asyncio.Lock()
        self._closing = False
        self._dead: WiSeDBError | None = None
        self._reader = asyncio.get_running_loop().create_task(
            self._read_loop(), name=f"wisedb-shard-{index}-reader"
        )

    async def _read_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            try:
                message = await loop.run_in_executor(None, self._connection.recv)
            except (EOFError, OSError):
                break
            request_id, payload = message
            future = self._pending.pop(request_id, None)
            if future is not None and not future.done():
                future.set_result(payload)
        if not self._closing:
            self._dead = WiSeDBError(
                f"serving shard {self.index} exited unexpectedly"
            )
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(self._dead)
            self._pending.clear()

    async def request(self, command: str, payload=None):
        if self._dead is not None:
            raise self._dead
        loop = asyncio.get_running_loop()
        request_id = next(self._ids)
        future = loop.create_future()
        self._pending[request_id] = future
        message = (request_id, command, payload)
        async with self._send_lock:
            await loop.run_in_executor(None, self._connection.send, message)
        kind, body = await future
        if kind == "error":
            raise _unpickle_error(body)
        return body

    async def register(self, payload: dict) -> None:
        await self.request("register", payload)

    async def submit(self, tenant: str, queries: list[Query]):
        return await self.request("submit", (tenant, queries))

    async def drain(self) -> None:
        await self.request("drain")

    async def metrics(self) -> ServingMetrics:
        return await self.request("metrics")

    async def close(self):
        outcomes: dict[str, SchedulingOutcome] = {}
        states: dict[str, tuple[str, object]] = {}
        try:
            body = await self.request("close")
            outcomes, states = body[0], body[1]
            if len(body) > 2:  # close payload could not be pickled
                warnings.warn(
                    f"serving shard {self.index}: {body[2]}", RuntimeWarning
                )
        except WiSeDBError as error:
            warnings.warn(
                f"serving shard {self.index} lost before close: {error}",
                RuntimeWarning,
            )
        self._closing = True
        loop = asyncio.get_running_loop()
        try:
            async with self._send_lock:
                await loop.run_in_executor(
                    None, self._connection.send, (0, "shutdown", None)
                )
        except (OSError, ValueError):  # worker already gone
            pass
        await self._reader
        await loop.run_in_executor(None, self._process.join, _JOIN_TIMEOUT)
        if self._process.is_alive():  # pragma: no cover - join-timeout safety
            self._process.terminate()
            self._process.join(1.0)
        try:
            self._connection.close()
        except OSError:  # pragma: no cover
            pass
        return outcomes, states


class _InlineShard:
    """One in-process engine partition (the fork/shm-free fallback)."""

    kind = "inline"

    def __init__(self, index: int, engine: ServingEngine) -> None:
        self.index = index
        self.engine = engine

    async def register(self, payload: dict) -> None:
        # Inline shards share the router's service: lanes train lazily on
        # first submit through the normal single-process path.
        pass

    async def submit(self, tenant: str, queries: list[Query]):
        admissions = []
        for query in queries:
            admission = await self.engine.submit(tenant, query)
            admissions.append((admission.admitted, admission.shed_reason))
        return admissions

    async def drain(self) -> None:
        await self.engine.drain()

    async def metrics(self) -> ServingMetrics:
        return self.engine.metrics()

    async def close(self):
        await self.engine.close()
        return self.engine.collect_outcomes(), _lane_states(self.engine)


# -- the router --------------------------------------------------------------------


class ShardedServingEngine:
    """A multi-process serving front end with deterministic tenant routing.

    Use like the single-process engine, with two differences: ``metrics()``
    and ``health()`` are coroutines (they round-trip worker pipes), and
    per-query tickets are not supported across processes::

        async with ShardedServingEngine(service, shards=4) as engine:
            await engine.submit("acme", query)
            ...
            await engine.drain()
            print((await engine.metrics()).describe())
        outcome = engine.outcome("acme")   # after close: priced, unified

    Outcomes are bit-identical to :class:`~repro.serving.engine.ServingEngine`
    (and therefore to ``OnlineScheduler.run``) for any shard count.
    """

    def __init__(
        self,
        service: WiSeDBService,
        shards: int | None = None,
        queue_limit: int = 1024,
        backpressure: str = "block",
        wait_resolution: float = 30.0,
        optimizations: OnlineOptimizations | None = None,
        isolation: str = "auto",
    ) -> None:
        if backpressure not in BACKPRESSURE_POLICIES:
            raise SpecificationError(
                f"unknown backpressure policy {backpressure!r}; "
                f"choose from {BACKPRESSURE_POLICIES}"
            )
        if queue_limit < 1:
            raise SpecificationError("queue_limit must be at least 1")
        if isolation not in ISOLATION_MODES:
            raise SpecificationError(
                f"unknown isolation mode {isolation!r}; "
                f"choose from {ISOLATION_MODES}"
            )
        if shards is None:
            shards = max(1, os.cpu_count() or 1)
        if shards < 1:
            raise SpecificationError("shards must be at least 1")
        self._service = service
        self._num_shards = shards
        self._queue_limit = queue_limit
        self._backpressure = backpressure
        self._wait_resolution = wait_resolution
        self._optimizations = optimizations
        self._isolation = isolation
        #: Why the router degraded from process isolation (``None`` if it
        #: did not) — same contract as ``ProcessPoolBackend.fallback_reason``.
        self.fallback_reason: str | None = None
        self._shards: list = []
        self._started = False
        self._closed = False
        #: tenant -> shard index, in first-submit order (snapshot ordering).
        self._tenants: dict[str, int] = {}
        self._registrations: dict[str, asyncio.Task] = {}
        self._guards: dict[str, ExitStack] = {}
        self._bundles: dict[int, shm.SharedArrayBundle] = {}
        self._outcomes: dict[str, SchedulingOutcome] = {}
        self._lane_states: dict[str, tuple[str, object]] = {}

    async def __aenter__(self) -> "ShardedServingEngine":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has completed admission shutdown."""
        return self._closed

    @property
    def shard_count(self) -> int:
        return self._num_shards

    @property
    def effective_isolation(self) -> str | None:
        """``"process"`` or ``"inline"`` once started, ``None`` before."""
        if not self._started or not self._shards:
            return None
        return self._shards[0].kind

    # -- startup and fallback ------------------------------------------------------

    def _engine_config(self, index: int) -> _ShardConfig:
        return _ShardConfig(
            index=index,
            queue_limit=self._queue_limit,
            backpressure=self._backpressure,
            wait_resolution=self._wait_resolution,
            optimizations=self._optimizations,
            degraded_fallback=self._service.degraded_fallback,
        )

    def _inline_shards(self) -> list:
        return [
            _InlineShard(
                index,
                ServingEngine(
                    self._service,
                    queue_limit=self._queue_limit,
                    backpressure=self._backpressure,
                    wait_resolution=self._wait_resolution,
                    optimizations=self._optimizations,
                    log_outcomes=False,
                ),
            )
            for index in range(self._num_shards)
        ]

    def _ensure_started(self) -> None:
        if self._started:
            return
        self._started = True
        mode = self._isolation
        if mode == "auto":
            if self._num_shards == 1:
                # One shard needs no processes: this *is* the single-process
                # engine, and auto mode keeps it that way.
                mode = "inline"
            elif not shm.shared_memory_available():
                mode = "inline"
                self.fallback_reason = "shared memory unavailable"
            else:
                mode = "process"
        if mode == "process":
            try:
                try:
                    context = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - platform without fork
                    context = multiprocessing.get_context()
                shards = []
                try:
                    for index in range(self._num_shards):
                        shards.append(
                            _ProcessShard(index, context, self._engine_config(index))
                        )
                except BaseException:
                    for shard in shards:
                        shard._closing = True
                        shard._connection.close()
                        shard._process.terminate()
                    raise
            except (OSError, ValueError) as error:
                # Same discipline as ProcessPoolBackend: degrade loudly to
                # the in-process path instead of refusing to serve.
                self.fallback_reason = (
                    f"process shards unavailable ({type(error).__name__}: {error})"
                )
                self._shards = self._inline_shards()
            else:
                self._shards = shards
        else:
            self._shards = self._inline_shards()

    # -- registration (process shards only) ---------------------------------------

    def _shipment(self, name: str) -> dict:
        """Train (or fail) the tenant in the router and package the shipment."""
        spec = self._service.tenant(name).spec
        try:
            result = self._service.train(name)
        except WiSeDBError as error:
            if not self._service.degraded_fallback:
                raise
            # Ship the error itself: the worker lane re-raises it at session
            # creation, producing the identical sticky degraded reason.
            return {"spec": spec.to_dict(), "training": ("error", _pickle_error(error)), "evaluator": None}
        segment = None
        if shm.shared_memory_available():
            evaluator = result.model.compiled_evaluator()
            bundle = self._bundles.get(id(evaluator))
            if bundle is None:
                bundle = shm.pack_evaluator(evaluator)
                self._bundles[id(evaluator)] = bundle
            segment = bundle.name
        return {
            "spec": spec.to_dict(),
            "training": ("result", result.to_dict()),
            "evaluator": segment,
        }

    async def _register(self, name: str) -> int:
        index = shard_of(name, self._num_shards)
        shard = self._shards[index]
        if shard.kind == "inline":
            self._tenants[name] = index
            return index
        tenant = self._service.tenant(name)
        guard = ExitStack()
        guard.enter_context(tenant.exclusive("serving"))
        try:
            payload = {"name": name, **self._shipment(name)}
            await shard.register(payload)
        except BaseException:
            guard.close()
            raise
        self._guards[name] = guard
        self._tenants[name] = index
        return index

    async def _shard_for(self, name: str):
        index = self._tenants.get(name)
        if index is not None:
            return self._shards[index]
        task = self._registrations.get(name)
        if task is None:
            task = asyncio.get_running_loop().create_task(self._register(name))
            self._registrations[name] = task
        try:
            index = await task
        except BaseException:
            # Leave failed registrations retryable, like lazy lane creation.
            if self._registrations.get(name) is task:
                del self._registrations[name]
            raise
        return self._shards[index]

    # -- serving -------------------------------------------------------------------

    async def warm(self, *tenants: str) -> None:
        """Create (and train/ship) the given tenants' lanes up front."""
        if self._closed:
            raise SpecificationError("the sharded serving engine is closed")
        self._ensure_started()
        for name in tenants:
            await self._shard_for(name)

    async def submit(self, tenant: str, query: Query, ticket: bool = False) -> Admission:
        """Offer one query to *tenant*'s shard (see :meth:`ServingEngine.submit`).

        Per-query tickets would require shipping decision futures across
        processes and are not supported here — use the single-process engine
        when you need them.
        """
        if self._closed:
            raise SpecificationError("the sharded serving engine is closed")
        if ticket:
            raise SpecificationError(
                "per-query tickets are not supported across shard processes; "
                "use ServingEngine for awaitable decisions"
            )
        self._ensure_started()
        shard = await self._shard_for(tenant)
        admissions = await shard.submit(tenant, [query])
        admitted, shed_reason = admissions[0]
        if admitted:
            return _ADMITTED
        return Admission(False, shed_reason=shed_reason)

    async def drain(self) -> None:
        """Wait until every admitted query on every shard has been decided."""
        if not self._started:
            return
        await asyncio.gather(*(shard.drain() for shard in self._shards))

    async def close(self) -> None:
        """Close every shard, merge outcomes, and log run history once.

        History rows are written by the router in sorted tenant order —
        deterministic regardless of shard count or per-shard close timing.
        """
        if self._closed:
            return
        self._closed = True
        outcomes: dict[str, SchedulingOutcome] = {}
        states: dict[str, tuple[str, object]] = {}
        try:
            for shard in self._shards:
                shard_outcomes, shard_states = await shard.close()
                outcomes.update(shard_outcomes)
                states.update(shard_states)
        finally:
            for guard in self._guards.values():
                guard.close()
            self._guards.clear()
            for bundle in self._bundles.values():
                bundle.close()
                bundle.unlink()
            self._bundles.clear()
        self._outcomes = outcomes
        self._lane_states = states
        for name in sorted(outcomes):
            self._service._record_history(name, outcomes[name], "serving")

    # -- observability -------------------------------------------------------------

    async def metrics(self) -> ServingMetrics:
        """Per-shard snapshots merged into one engine-wide view.

        Entries are ordered by first submission, like the single-process
        engine's lane order; every per-tenant entry is a shard lane's counters
        verbatim, so ``check_identities`` holds on each even mid-drain.
        """
        if not self._started:
            return ServingMetrics(status="closed" if self._closed else "ok")
        snapshots = await asyncio.gather(
            *(shard.metrics() for shard in self._shards)
        )
        merged = merge_metrics(snapshots, closed=self._closed)
        order = {name: position for position, name in enumerate(self._tenants)}
        entries = sorted(
            merged.tenants, key=lambda entry: order.get(entry.tenant, len(order))
        )
        return ServingMetrics(status=merged.status, tenants=tuple(entries))

    async def health(self) -> str:
        """Worst per-shard status (same precedence as the single engine)."""
        return (await self.metrics()).status

    def outcome(self, tenant: str) -> SchedulingOutcome:
        """The tenant's priced outcome (after :meth:`close`); see
        :meth:`ServingEngine.outcome` for the exact semantics mirrored here."""
        if not self._closed:
            raise SpecificationError(
                "close() the engine before asking for priced outcomes"
            )
        if tenant not in self._tenants:
            raise SpecificationError(f"tenant {tenant!r} was never served")
        state, detail = self._lane_states.get(tenant, ("ok", None))
        if state == "failed":
            error = detail if isinstance(detail, BaseException) else _unpickle_error(detail)
            raise error
        if state == "degraded":
            raise SpecificationError(
                f"tenant {tenant!r} was served entirely degraded "
                f"({detail}); no learned outcome exists"
            )
        outcome = self._outcomes.get(tenant)
        if outcome is None:
            raise SpecificationError(
                f"tenant {tenant!r} has no priceable outcome "
                "(no queries were admitted, or its shard was lost)"
            )
        return outcome
