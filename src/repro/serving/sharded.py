"""Shared-memory sharded serving: one :class:`ServingEngine` per core.

:class:`ShardedServingEngine` is a router in front of N *shards*.  Tenants
are partitioned across shards by a deterministic hash of the tenant id
(:func:`shard_of` — stable across processes and runs, unlike salted
``hash()``), and each shard runs a full single-process
:class:`~repro.serving.engine.ServingEngine` — its own event loop, lanes,
epoch batching, backpressure, and degraded fallback — in a forked worker
process speaking a small request/reply protocol over a ``multiprocessing``
pipe.

**Models ship zero-copy.**  A tenant's trained model is serialized once at
registration (the registry's pinned ``to_dict``/``from_dict`` round trip,
which restores bit-identical schedulers), but the inference hot path does not
run on the round-tripped tree: the parent packs its
:class:`~repro.learning.decision_tree.CompiledTreeEvaluator` — five flat
parallel arrays — into a ``multiprocessing.shared_memory`` segment
(:mod:`repro.learning.shm`) and every worker attaches read-only views, so N
shards cost one copy of the arrays plus O(1) heap per attachment instead of
N unpickled trees.

**Admission is pipelined and batched.**  The router never pays a pipe round
trip per query: each process shard has an *outbox* that accumulates
submissions while the pipe is busy and ships them as one framed
``submit_batch`` message (same-tenant order preserved), fire-and-forget
under monotonically increasing sequence numbers.  The worker unpacks a batch
into its per-lane queues in one pass, answers with a single aggregated
``batch_ack`` frame, and streams per-query ticket resolutions as its lanes
decide them — so a sequential submitter's throughput is bounded by batch
frames, not round trips.  Backpressure flows through batch-level *credits*:
the router spends one credit per in-flight query against the worker's
``queue_limit`` and gets them back with each ack, so ``shed`` refusals and
``block`` suspensions behave exactly like the single-process engine's
full-queue admission.  ``max_batch`` caps the frame size and
``max_batch_delay`` adds an optional coalescing window; the defaults
(unbounded, zero) mean batching only ever captures queueing that already
happened.

**Bit-identical for any shard count.**  Tenant lanes are fully independent
in the single-process engine — no cross-tenant state — so partitioning them
across processes cannot change any tenant's decision stream.  Shipping is
bit-identity-preserving (round-trip tests pin it; the shared evaluator *is*
the parent's arrays), and per-tenant arrival order is preserved because each
outbox is FIFO and the worker pump admits batches in sequence order.  The
equivalence suite locks ``shards ∈ {1, 2, 4}`` against
``OnlineScheduler.run`` for every goal kind and catalog.

**Fallback discipline.**  Mirroring
:class:`~repro.parallel.backend.ProcessPoolBackend`, the router prefers a
``fork`` multiprocessing context, falls back to the platform default, and —
when process spawn or shared memory is unavailable (``isolation="auto"``) —
degrades to *inline* shards: the same routing over in-process
``ServingEngine`` partitions, with the reason recorded in
:attr:`ShardedServingEngine.fallback_reason`.  ``shards=1`` in auto mode is
exactly the existing single-process engine.  This is also what makes the
whole surface testable on a 1-core CI container.

**Observability and history.**  Control frames (``metrics``, ``register``,
``drain``, ``close``) bypass the data outbox entirely, so snapshots stay
available mid-burst even when a worker is wedged deciding; the worker
answers ``metrics`` from its receive loop, folding received-but-not-yet-
admitted batch queries into the counters so the identities hold at any
point of the pipeline.  ``metrics()`` merges per-shard snapshots with
:func:`~repro.serving.metrics.merge_metrics` and stamps the router's batch
counters (frames sent, queries carried, round trips saved).  At ``close()``
every shard prices its lanes locally (with per-shard history logging
disabled) and the router writes all run-history rows itself, ordered
deterministically by tenant name.
"""

from __future__ import annotations

import asyncio
import functools
import hashlib
import io
import itertools
import math
import multiprocessing
import os
import pickle
import warnings
from collections import deque
from contextlib import ExitStack
from dataclasses import dataclass, replace

from repro.core.scheduler import SchedulingOutcome
from repro.exceptions import SpecificationError, TrainingError, WiSeDBError
from repro.learning import shm
from repro.learning.trainer import TrainingResult
from repro.runtime.online import OnlineOptimizations
from repro.service.service import Tenant, TenantSpec, WiSeDBService
from repro.serving.engine import (
    _ADMITTED,
    Admission,
    BACKPRESSURE_POLICIES,
    ServingEngine,
    ServingTicket,
)
from repro.serving.metrics import ServingMetrics, TenantMetrics, merge_metrics
from repro.workloads.query import Query

#: How shards are hosted: ``process`` (forked workers), ``inline``
#: (in-process engine partitions), or ``auto`` (process when the platform
#: supports it and more than one shard was asked for).
ISOLATION_MODES = ("auto", "process", "inline")

#: Seconds to wait for a worker process to exit after its pipe closes.
_JOIN_TIMEOUT = 10.0


def shard_of(tenant: str, shards: int) -> int:
    """Deterministic tenant-id routing, stable across processes and runs.

    ``hash()`` is salted per process, so the router hashes the UTF-8 tenant
    name through sha256 instead — the same tenant always lands on the same
    shard, which is what keeps per-tenant arrival order (and therefore the
    decision stream) independent of the shard count.
    """
    if shards < 1:
        raise SpecificationError("shard count must be at least 1")
    digest = hashlib.sha256(tenant.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


def _pickle_error(error: BaseException):
    """An exception as pipe-safe bytes (falls back to its rendering)."""
    try:
        blob = pickle.dumps(error)
        pickle.loads(blob)  # some exceptions pickle but refuse to unpickle
    except Exception:
        return f"{type(error).__name__}: {error}"
    return blob


def _unpickle_error(blob) -> BaseException:
    if isinstance(blob, bytes):
        try:
            error = pickle.loads(blob)
        except Exception:
            return WiSeDBError("shard worker failed with an unpicklable error")
        if isinstance(error, BaseException):
            return error
    if isinstance(blob, str):
        return WiSeDBError(blob)
    return WiSeDBError(f"shard worker failed: {blob!r}")


def _lane_states(engine: ServingEngine) -> dict[str, tuple[str, object]]:
    """Each lane's terminal state, for the router's ``outcome()`` semantics."""
    states: dict[str, tuple[str, object]] = {}
    for name, lane in engine._lanes.items():
        if lane.failure is not None:
            states[name] = ("failed", lane.failure)
        elif lane.session is None:
            states[name] = ("degraded", lane.degraded_reason)
        else:
            states[name] = ("ok", None)
    return states


# -- the worker side ---------------------------------------------------------------


@dataclass(frozen=True)
class _ShardConfig:
    """Engine parameters a worker needs to mirror the router's settings."""

    index: int
    queue_limit: int
    backpressure: str
    wait_resolution: float
    optimizations: OnlineOptimizations | None
    degraded_fallback: bool


class _ShardService(WiSeDBService):
    """Worker-side service: models are shipped in, never trained locally.

    The parent trains (or fails to train) each tenant once and ships the
    result — or the pickled training error, so a degraded lane's sticky
    reason string is bit-identical to the single-process engine's.  Wait-
    triggered *retraining* inside a lane still runs locally through the
    tenant's generator, exactly as it does in-process.
    """

    def __init__(self, degraded_fallback: bool) -> None:
        super().__init__(degraded_fallback=degraded_fallback)
        self._shipped: dict[str, object] = {}

    def adopt(self, spec: TenantSpec, shipped: object) -> None:
        self._tenants[spec.name] = Tenant(spec, backend_factory=lambda: self.backend)
        self._shipped[spec.name] = shipped

    def train(self, name: str, mode: str = "auto") -> TrainingResult:
        tenant = self.tenant(name)
        if tenant.training is not None:
            return tenant.training
        shipped = self._shipped.get(name)
        if isinstance(shipped, BaseException):
            raise shipped
        if not isinstance(shipped, TrainingResult):
            raise TrainingError(
                f"no training result was shipped for tenant {name!r}"
            )
        tenant.training = shipped
        tenant.provenance = "shipped"
        return shipped


def _register_shipment(
    service: _ShardService, payload: dict, attachments: list
) -> None:
    """Adopt one tenant from the router's registration payload."""
    spec = TenantSpec.from_dict(payload["spec"], n_jobs=1)
    kind, blob = payload["training"]
    if kind == "error":
        service.adopt(spec, _unpickle_error(blob))
        return
    result = TrainingResult.from_dict(blob, n_jobs=1)
    segment = payload["evaluator"]
    if segment is not None:
        evaluator, view = shm.attach_evaluator(segment)
        attachments.append(view)
        result.model.use_evaluator(evaluator)
    service.adopt(spec, result)


def _ship_ticket(connection, ticket_id: int, future) -> None:
    """Stream one resolved decision back over the pipe (future callback)."""
    if future.cancelled():
        frame = ("ticket", (ticket_id, "error", "ticket cancelled"))
    else:
        error = future.exception()
        if error is not None:
            frame = ("ticket", (ticket_id, "error", _pickle_error(error)))
        else:
            frame = ("ticket", (ticket_id, "ok", future.result()))
    try:
        connection.send(frame)
    except (OSError, ValueError):  # pragma: no cover - router gone
        pass


def _ship_ticket_error(connection, ticket_id: int, error: BaseException) -> None:
    """Resolve a router-side ticket whose query never got a lane future."""
    try:
        connection.send(("ticket", (ticket_id, "error", _pickle_error(error))))
    except (OSError, ValueError):  # pragma: no cover - router gone
        pass


def _pending_snapshot(
    engine: ServingEngine, pending_admission: dict[str, int]
) -> ServingMetrics:
    """The engine's snapshot with received-but-unadmitted batches folded in.

    ``metrics`` is answered from the receive loop so it can never starve
    behind the pump, but that means a burst the pump has not yet admitted
    would be invisible.  Queries counted here were already accepted by the
    router (credits spent, frame received), so they are *submitted*,
    *admitted*, and *in flight* — which keeps both counter identities true
    at every stage of the pipeline.
    """
    snapshot = engine.metrics()
    extra = {name: n for name, n in pending_admission.items() if n > 0}
    if not extra:
        return snapshot
    entries = []
    for entry in snapshot.tenants:
        count = extra.pop(entry.tenant, 0)
        if count:
            entry = replace(
                entry,
                submitted=entry.submitted + count,
                admitted=entry.admitted + count,
                in_flight=entry.in_flight + count,
            )
        entries.append(entry)
    for tenant, count in extra.items():
        entries.append(
            TenantMetrics(
                tenant=tenant,
                submitted=count,
                admitted=count,
                shed=0,
                decided=0,
                degraded=0,
                failed=0,
                queue_depth=0,
                in_flight=count,
                epochs=0,
                retrains=0,
                cache_hits=0,
                decision_p50=math.nan,
                decision_p99=math.nan,
            )
        )
    return ServingMetrics(status=snapshot.status, tenants=tuple(entries))


async def _shard_worker_loop(connection, config: _ShardConfig) -> None:
    """One worker: a full ServingEngine driven by pipelined pipe frames.

    Frame ordering matters: ``submit_batch``/``drain``/``close`` are funneled
    through a single pump task so same-tenant arrivals keep their order even
    when a full queue blocks admission.  ``register`` and ``metrics`` are
    answered directly from the receive loop — which is what keeps snapshots
    (and their counter identities) available while the pump is busy, with
    received-but-unadmitted batch queries folded in by
    :func:`_pending_snapshot`.  A batch is answered with ONE aggregated
    ``batch_ack`` frame (per-tenant admitted counts plus any pickled lane
    failures) that returns the router's credits; ticket resolutions stream
    back as their decisions land, via future callbacks — never a blocking
    wait in the pump.
    """
    loop = asyncio.get_running_loop()
    service = _ShardService(degraded_fallback=config.degraded_fallback)
    engine = ServingEngine(
        service,
        queue_limit=config.queue_limit,
        # Always block: the router's credit gate enforces the configured
        # policy (shed refusals happen router-side before a frame is built),
        # and credits never exceed queue_limit, so this cannot actually
        # suspend for long — but a silent worker-side shed would desync the
        # router's accounting, and block turns that impossibility into a
        # stall instead of corruption.
        backpressure="block",
        wait_resolution=config.wait_resolution,
        optimizations=config.optimizations,
        log_outcomes=False,
    )
    attachments: list = []
    requests: asyncio.Queue = asyncio.Queue()
    #: Lanes whose epoch is held open between batch frames (see pump()).
    holds: dict[str, object] = {}
    #: Per-tenant queries received in batch frames but not yet admitted by
    #: the pump (maintained by the receive loop / pump pair; single thread).
    pending_admission: dict[str, int] = {}

    def reply(request_id: int, kind: str, body) -> None:
        connection.send(("reply", (request_id, kind, body)))

    def release_holds() -> None:
        for lane in holds.values():
            lane.blocked_putters -= 1
        holds.clear()

    async def admit_batch(seq: int, groups) -> None:
        acks: list[tuple[str, int]] = []
        failures: list[tuple[str, object]] = []
        for tenant, entries in groups:
            acks.append((tenant, len(entries)))
            try:
                # Hold the lane's epoch open across batch frames.  Without a
                # blocked producer the lane worker would treat an idle queue
                # as end-of-burst and close the epoch early — splitting what
                # an in-process burst (and ``OnlineScheduler.run``) parses as
                # ONE epoch.  Pinning ``blocked_putters`` (the same signal an
                # in-process submitter blocked on a full queue emits) disables
                # only that idle flush: epochs are decided purely by the
                # timestamp watermark until drain or close, which is exactly
                # the direct run's grouping.
                lane = engine._lane(tenant)
                if tenant not in holds:
                    holds[tenant] = lane
                    lane.blocked_putters += 1
            except BaseException as error:
                pending_admission[tenant] -= len(entries)
                failures.append((tenant, _pickle_error(error)))
                for _query, ticket_id in entries:
                    if ticket_id is not None:
                        _ship_ticket_error(connection, ticket_id, error)
                if not isinstance(error, Exception):
                    raise
                continue
            for query, ticket_id in entries:
                try:
                    admission = await engine.submit(
                        tenant, query, ticket=ticket_id is not None
                    )
                except BaseException as error:
                    failures.append((tenant, _pickle_error(error)))
                    if ticket_id is not None:
                        _ship_ticket_error(connection, ticket_id, error)
                    if not isinstance(error, Exception):
                        raise
                    continue
                finally:
                    pending_admission[tenant] -= 1
                if ticket_id is not None and admission.ticket is not None:
                    admission.ticket.add_done_callback(
                        functools.partial(_ship_ticket, connection, ticket_id)
                    )
        connection.send(("batch_ack", (seq, acks, failures)))

    async def pump() -> None:
        while True:
            item = await requests.get()
            if item is None:
                return
            request_id, command, payload = item
            try:
                if command == "submit_batch":
                    await admit_batch(request_id, payload)
                elif command == "drain":
                    # Flush the epochs the holds kept open (the lane worker's
                    # own idle flush, run from here because the workers are
                    # parked on empty queues); queued leftovers are decided by
                    # the workers themselves once the join below runs them.
                    release_holds()
                    for lane in engine._lanes.values():
                        if (
                            lane.pending
                            and lane.queue.empty()
                            and lane.blocked_putters == 0
                        ):
                            engine._decide(lane)
                    await engine.drain()
                    reply(request_id, "ok", None)
                elif command == "close":
                    release_holds()
                    await engine.close()
                    outcomes = engine.collect_outcomes()
                    states = _lane_states(engine)
                    try:
                        reply(request_id, "closed", (outcomes, states))
                    except Exception as error:
                        reply(
                            request_id,
                            "closed",
                            ({}, {}, f"unshippable close payload: {error}"),
                        )
            except BaseException as error:
                reply(request_id, "error", _pickle_error(error))
                if not isinstance(error, Exception):
                    raise

    pump_task = loop.create_task(pump(), name=f"wisedb-shard-{config.index}-pump")
    try:
        while True:
            try:
                message = await loop.run_in_executor(None, connection.recv)
            except (EOFError, OSError):
                break
            request_id, command, payload = message
            if command == "shutdown":
                # Explicit, because EOF cannot be relied on: shards forked
                # later inherit duplicates of this pipe's parent end, so the
                # router closing its copy does not close the channel.
                break
            if command == "register":
                try:
                    _register_shipment(service, payload, attachments)
                except BaseException as error:
                    reply(request_id, "error", _pickle_error(error))
                else:
                    reply(request_id, "ok", None)
            elif command == "metrics":
                reply(
                    request_id,
                    "metrics",
                    _pending_snapshot(engine, pending_admission),
                )
            else:
                if command == "submit_batch":
                    # Count arrivals at receipt, before the pump runs, so a
                    # metrics answer mid-burst reflects every query the
                    # router has already spent a credit on.
                    for tenant, entries in payload:
                        pending_admission[tenant] = (
                            pending_admission.get(tenant, 0) + len(entries)
                        )
                requests.put_nowait((request_id, command, payload))
    finally:
        requests.put_nowait(None)
        await pump_task
        if not engine.closed:
            await engine.close()
        for view in attachments:
            view.close()


def _shard_worker_main(connection, config: _ShardConfig) -> None:
    try:
        asyncio.run(_shard_worker_loop(connection, config))
    except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover - parent gone
        pass
    finally:
        try:
            connection.close()
        except OSError:  # pragma: no cover
            pass


# -- the router's shard handles ----------------------------------------------------


class _ProcessShard:
    """Router-side handle on one worker: pipe, reader, outbox, and credits.

    The data path is pipelined: :meth:`submit` spends a credit, appends to
    the outbox, and returns — no pipe round trip.  A sender task coalesces
    everything that accumulated while the pipe was busy into one framed
    ``submit_batch`` (same-tenant order preserved) under monotonically
    increasing sequence numbers; the read loop matches the worker's
    aggregated ``batch_ack`` frames (returning credits, surfacing pickled
    lane failures as sticky per-tenant errors) and streamed ``ticket``
    frames against their futures.  Control requests — ``register``,
    ``metrics``, ``drain``, ``close`` — keep the request/reply path and
    bypass the outbox, so snapshots stay available mid-burst.

    Pass ``process=None`` (with a pre-wired connection) to drive an
    in-process :func:`_shard_worker_loop` — the protocol tests do.
    """

    kind = "process"

    def __init__(
        self,
        index: int,
        config: _ShardConfig,
        connection,
        process=None,
        max_batch: int | None = None,
        max_batch_delay: float = 0.0,
    ) -> None:
        self.index = index
        self._config = config
        self._connection = connection
        self._process = process
        self._max_batch = max_batch
        self._max_batch_delay = max_batch_delay
        self._pending: dict[int, asyncio.Future] = {}
        self._tickets: dict[int, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._send_lock = asyncio.Lock()
        #: Reused frame buffer: every outgoing frame pickles into the same
        #: preallocated ``BytesIO`` (guarded by the send lock), so the hot
        #: path never reallocates the header + payload staging area.
        self._send_buffer = io.BytesIO()
        self._closing = False
        self._dead: WiSeDBError | None = None
        #: tenant -> admission credits left (starts at ``queue_limit``; one
        #: spent per outboxed query, returned by the worker's batch acks).
        self._credits: dict[str, int] = {}
        self._credit_waiters: dict[str, deque] = {}
        #: tenant -> sticky lane failure reported by a batch ack.
        self._failures: dict[str, BaseException] = {}
        self._last_times: dict[str, float] = {}
        self._outbox: deque = deque()
        self._unacked: dict[int, int] = {}
        #: tenant -> queries refused by the credit gate (the worker never
        #: saw them; the router folds these into merged snapshots).
        self.shed_counts: dict[str, int] = {}
        self.batches_sent = 0
        self.batched_queries = 0
        loop = asyncio.get_running_loop()
        self._outbox_event = asyncio.Event()
        self._flushed = asyncio.Event()
        self._flushed.set()
        self._sender_stopping = False
        self._reader = loop.create_task(
            self._read_loop(), name=f"wisedb-shard-{index}-reader"
        )
        self._sender = loop.create_task(
            self._send_loop(), name=f"wisedb-shard-{index}-sender"
        )

    @classmethod
    def spawn(
        cls,
        index: int,
        context,
        config: _ShardConfig,
        max_batch: int | None = None,
        max_batch_delay: float = 0.0,
    ) -> "_ProcessShard":
        parent_end, child_end = context.Pipe()
        try:
            process = context.Process(
                target=_shard_worker_main,
                args=(child_end, config),
                daemon=True,
                name=f"wisedb-shard-{index}",
            )
            process.start()
        except BaseException:
            parent_end.close()
            child_end.close()
            raise
        child_end.close()
        return cls(
            index,
            config,
            parent_end,
            process=process,
            max_batch=max_batch,
            max_batch_delay=max_batch_delay,
        )

    # -- framing -------------------------------------------------------------------

    def _encode(self, message) -> memoryview:
        buffer = self._send_buffer
        buffer.seek(0)
        buffer.truncate()
        pickle.Pickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(message)
        return buffer.getbuffer()

    async def _post(self, message) -> None:
        loop = asyncio.get_running_loop()
        async with self._send_lock:
            data = self._encode(message)
            try:
                await loop.run_in_executor(
                    None, self._connection.send_bytes, data
                )
            finally:
                data.release()

    # -- the read loop: replies, batch acks, ticket streams ------------------------

    async def _read_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            try:
                message = await loop.run_in_executor(None, self._connection.recv)
            except (EOFError, OSError):
                break
            kind, body = message
            if kind == "reply":
                request_id, reply_kind, payload = body
                future = self._pending.pop(request_id, None)
                if future is not None and not future.done():
                    future.set_result((reply_kind, payload))
            elif kind == "batch_ack":
                self._handle_ack(*body)
            elif kind == "ticket":
                ticket_id, status, payload = body
                future = self._tickets.pop(ticket_id, None)
                if future is not None and not future.done():
                    if status == "ok":
                        future.set_result(payload)
                    else:
                        future.set_exception(_unpickle_error(payload))
        if not self._closing:
            self._abandon(
                WiSeDBError(f"serving shard {self.index} exited unexpectedly")
            )

    def _handle_ack(self, seq: int, acks, failures) -> None:
        self._unacked.pop(seq, None)
        for tenant, blob in failures:
            self._failures.setdefault(tenant, _unpickle_error(blob))
        for tenant, count in acks:
            credit = self._credits.get(tenant, 0) + count
            waiters = self._credit_waiters.get(tenant)
            # Wake blocked submitters FIFO; a woken waiter owns its credit.
            while waiters and credit > 0:
                waiter = waiters.popleft()
                if not waiter.done():
                    credit -= 1
                    waiter.set_result(None)
            self._credits[tenant] = credit

    def _abandon(self, error: WiSeDBError) -> None:
        self._dead = error
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()
        for future in self._tickets.values():
            if not future.done():
                future.set_exception(error)
        self._tickets.clear()
        for waiters in self._credit_waiters.values():
            for waiter in waiters:
                if not waiter.done():
                    waiter.set_exception(error)
        self._credit_waiters.clear()
        self._flushed.set()
        self._outbox_event.set()

    def _abort(self) -> None:
        """Best-effort teardown for startup failures (no protocol)."""
        self._closing = True
        self._sender_stopping = True
        self._outbox_event.set()
        try:
            self._connection.close()
        except OSError:  # pragma: no cover
            pass
        if self._process is not None:
            self._process.terminate()

    # -- the sender: outbox -> coalesced submit_batch frames -----------------------

    async def _send_loop(self) -> None:
        outbox = self._outbox
        while True:
            if not outbox:
                self._flushed.set()
                if self._sender_stopping:
                    return
                self._outbox_event.clear()
                await self._outbox_event.wait()
                continue
            if self._max_batch_delay > 0.0:
                # Optional coalescing window; with the default (zero) a batch
                # only ever captures queueing that already happened while the
                # previous frame was on the pipe.
                await asyncio.sleep(self._max_batch_delay)
            count = len(outbox)
            if self._max_batch is not None:
                count = min(count, self._max_batch)
            groups: list[tuple[str, list]] = []
            for _ in range(count):
                tenant, query, ticket_id = outbox.popleft()
                if groups and groups[-1][0] == tenant:
                    groups[-1][1].append((query, ticket_id))
                else:
                    groups.append((tenant, [(query, ticket_id)]))
            seq = next(self._ids)
            self._unacked[seq] = count
            self.batches_sent += 1
            self.batched_queries += count
            try:
                await self._post((seq, "submit_batch", groups))
            except (OSError, ValueError):
                # The read loop notices the dead pipe and fails the waiters.
                self._flushed.set()
                return

    async def flush(self) -> None:
        """Wait until everything outboxed has been handed to the pipe.

        Outbox entries are already credit-approved, so this waits only on
        pipe writes — never on the worker's pump — and therefore cannot
        starve behind a wedged or slow worker (acks are not awaited).
        """
        if self._dead is not None:
            raise self._dead
        await self._flushed.wait()
        if self._dead is not None:
            raise self._dead

    # -- the control path (bypasses the outbox) ------------------------------------

    async def request(self, command: str, payload=None):
        if self._dead is not None:
            raise self._dead
        request_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            await self._post((request_id, command, payload))
        except BaseException:
            self._pending.pop(request_id, None)
            raise
        kind, body = await future
        if kind == "error":
            raise _unpickle_error(body)
        return body

    async def register(self, payload: dict) -> None:
        await self.request("register", payload)
        self._credits.setdefault(payload["name"], self._config.queue_limit)

    # -- the data path -------------------------------------------------------------

    async def submit(
        self, tenant: str, query: Query, want_ticket: bool
    ) -> Admission:
        if self._dead is not None:
            raise self._dead
        failure = self._failures.get(tenant)
        if failure is not None:
            raise failure
        last = self._last_times.get(tenant, -math.inf)
        if query.arrival_time < last:
            raise SpecificationError(
                f"tenant {tenant!r}: arrival times must be non-decreasing "
                f"(got {query.arrival_time} after {last})"
            )
        credits = self._credits
        if credits.get(tenant, 0) <= 0:
            if self._config.backpressure == "shed":
                self.shed_counts[tenant] = self.shed_counts.get(tenant, 0) + 1
                return Admission(
                    False,
                    shed_reason=(
                        f"admission queue full "
                        f"(limit={self._config.queue_limit}) for tenant {tenant!r}"
                    ),
                )
            waiter = asyncio.get_running_loop().create_future()
            self._credit_waiters.setdefault(tenant, deque()).append(waiter)
            await waiter  # FIFO per tenant; raises if the shard dies
        else:
            credits[tenant] -= 1
        self._last_times[tenant] = query.arrival_time
        ticket_id = None
        ticket_future = None
        if want_ticket:
            ticket_id = next(self._ids)
            ticket_future = asyncio.get_running_loop().create_future()
            self._tickets[ticket_id] = ticket_future
        self._outbox.append((tenant, query, ticket_id))
        self._flushed.clear()
        self._outbox_event.set()
        if ticket_future is not None:
            return Admission(True, ticket=ServingTicket(ticket_future))
        return _ADMITTED

    async def drain(self) -> None:
        await self.flush()
        await self.request("drain")

    async def metrics(self) -> ServingMetrics:
        # Flush first so a quiesced engine's snapshot includes everything
        # already submitted (entries are credit-approved, so this cannot
        # block on a busy worker); the metrics frame itself bypasses the
        # outbox and is answered from the worker's receive loop.
        await self.flush()
        return await self.request("metrics")

    async def close(self):
        outcomes: dict[str, SchedulingOutcome] = {}
        states: dict[str, tuple[str, object]] = {}
        try:
            await self.flush()
        except WiSeDBError:
            pass
        self._sender_stopping = True
        self._outbox_event.set()
        await self._sender
        try:
            body = await self.request("close")
            outcomes, states = body[0], body[1]
            if len(body) > 2:  # close payload could not be pickled
                warnings.warn(
                    f"serving shard {self.index}: {body[2]}", RuntimeWarning
                )
        except WiSeDBError as error:
            warnings.warn(
                f"serving shard {self.index} lost before close: {error}",
                RuntimeWarning,
            )
        self._closing = True
        loop = asyncio.get_running_loop()
        try:
            await self._post((0, "shutdown", None))
        except (OSError, ValueError):  # worker already gone
            pass
        await self._reader
        if self._process is not None:
            await loop.run_in_executor(None, self._process.join, _JOIN_TIMEOUT)
            if self._process.is_alive():  # pragma: no cover - join-timeout safety
                self._process.terminate()
                self._process.join(1.0)
        leftover = WiSeDBError(
            f"serving shard {self.index} closed before the ticket resolved"
        )
        for future in self._tickets.values():
            if not future.done():
                future.set_exception(leftover)
        self._tickets.clear()
        try:
            self._connection.close()
        except OSError:  # pragma: no cover
            pass
        return outcomes, states


class _InlineShard:
    """One in-process engine partition (the fork/shm-free fallback)."""

    kind = "inline"

    def __init__(self, index: int, engine: ServingEngine) -> None:
        self.index = index
        self.engine = engine
        # Uniform shard surface: inline shards have no pipe, so no batching
        # counters and no router-side sheds (the engine counts its own).
        self.shed_counts: dict[str, int] = {}
        self.batches_sent = 0
        self.batched_queries = 0

    async def register(self, payload: dict) -> None:
        # Inline shards share the router's service: lanes train lazily on
        # first submit through the normal single-process path.
        pass

    async def submit(
        self, tenant: str, query: Query, want_ticket: bool
    ) -> Admission:
        return await self.engine.submit(tenant, query, ticket=want_ticket)

    async def drain(self) -> None:
        await self.engine.drain()

    async def metrics(self) -> ServingMetrics:
        return self.engine.metrics()

    async def close(self):
        await self.engine.close()
        return self.engine.collect_outcomes(), _lane_states(self.engine)


# -- the router --------------------------------------------------------------------


class ShardedServingEngine:
    """A multi-process serving front end with deterministic tenant routing.

    Use like the single-process engine, with one difference: ``metrics()``
    and ``health()`` are coroutines (they round-trip worker pipes).
    Per-query tickets work across processes — the worker streams decision
    frames back and the router resolves the awaited future::

        async with ShardedServingEngine(service, shards=4) as engine:
            admission = await engine.submit("acme", query, ticket=True)
            ...
            decision = await admission.ticket
            await engine.drain()
            print((await engine.metrics()).describe())
        outcome = engine.outcome("acme")   # after close: priced, unified

    Admission to process shards is pipelined and batched (see the module
    docstring); ``max_batch`` caps the queries per frame and
    ``max_batch_delay`` adds an optional coalescing window.  The defaults —
    unbounded batch, zero delay — add no latency and batch only what
    queued while the pipe was busy.

    Outcomes are bit-identical to :class:`~repro.serving.engine.ServingEngine`
    (and therefore to ``OnlineScheduler.run``) for any shard count.
    """

    def __init__(
        self,
        service: WiSeDBService,
        shards: int | None = None,
        queue_limit: int = 1024,
        backpressure: str = "block",
        wait_resolution: float = 30.0,
        optimizations: OnlineOptimizations | None = None,
        isolation: str = "auto",
        max_batch: int | None = None,
        max_batch_delay: float = 0.0,
    ) -> None:
        if backpressure not in BACKPRESSURE_POLICIES:
            raise SpecificationError(
                f"unknown backpressure policy {backpressure!r}; "
                f"choose from {BACKPRESSURE_POLICIES}"
            )
        if queue_limit < 1:
            raise SpecificationError("queue_limit must be at least 1")
        if isolation not in ISOLATION_MODES:
            raise SpecificationError(
                f"unknown isolation mode {isolation!r}; "
                f"choose from {ISOLATION_MODES}"
            )
        if max_batch is not None and max_batch < 1:
            raise SpecificationError("max_batch must be at least 1 (or None)")
        if max_batch_delay < 0:
            raise SpecificationError("max_batch_delay must be non-negative")
        if shards is None:
            shards = max(1, os.cpu_count() or 1)
        if shards < 1:
            raise SpecificationError("shards must be at least 1")
        self._service = service
        self._num_shards = shards
        self._queue_limit = queue_limit
        self._backpressure = backpressure
        self._wait_resolution = wait_resolution
        self._optimizations = optimizations
        self._isolation = isolation
        self._max_batch = max_batch
        self._max_batch_delay = max_batch_delay
        #: Why the router degraded from process isolation (``None`` if it
        #: did not) — same contract as ``ProcessPoolBackend.fallback_reason``.
        self.fallback_reason: str | None = None
        self._shards: list = []
        self._started = False
        self._closed = False
        #: tenant -> shard index, in first-submit order (snapshot ordering).
        #: Filled once per tenant at registration, so the sha256 behind
        #: :func:`shard_of` runs exactly once per tenant lifetime.
        self._tenants: dict[str, int] = {}
        #: tenant -> shard object: the submit fast path (no list indexing).
        self._routes: dict[str, object] = {}
        self._registrations: dict[str, asyncio.Task] = {}
        self._guards: dict[str, ExitStack] = {}
        self._bundles: dict[int, shm.SharedArrayBundle] = {}
        self._outcomes: dict[str, SchedulingOutcome] = {}
        self._lane_states: dict[str, tuple[str, object]] = {}

    async def __aenter__(self) -> "ShardedServingEngine":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has completed admission shutdown."""
        return self._closed

    @property
    def shard_count(self) -> int:
        return self._num_shards

    @property
    def effective_isolation(self) -> str | None:
        """``"process"`` or ``"inline"`` once started, ``None`` before."""
        if not self._started or not self._shards:
            return None
        return self._shards[0].kind

    # -- startup and fallback ------------------------------------------------------

    def _engine_config(self, index: int) -> _ShardConfig:
        return _ShardConfig(
            index=index,
            queue_limit=self._queue_limit,
            backpressure=self._backpressure,
            wait_resolution=self._wait_resolution,
            optimizations=self._optimizations,
            degraded_fallback=self._service.degraded_fallback,
        )

    def _inline_shards(self) -> list:
        return [
            _InlineShard(
                index,
                ServingEngine(
                    self._service,
                    queue_limit=self._queue_limit,
                    backpressure=self._backpressure,
                    wait_resolution=self._wait_resolution,
                    optimizations=self._optimizations,
                    log_outcomes=False,
                ),
            )
            for index in range(self._num_shards)
        ]

    def _ensure_started(self) -> None:
        if self._started:
            return
        self._started = True
        mode = self._isolation
        if mode == "auto":
            if self._num_shards == 1:
                # One shard needs no processes: this *is* the single-process
                # engine, and auto mode keeps it that way.
                mode = "inline"
            elif not shm.shared_memory_available():
                mode = "inline"
                self.fallback_reason = "shared memory unavailable"
            else:
                mode = "process"
        if mode == "process":
            try:
                try:
                    context = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - platform without fork
                    context = multiprocessing.get_context()
                shards = []
                try:
                    for index in range(self._num_shards):
                        shards.append(
                            _ProcessShard.spawn(
                                index,
                                context,
                                self._engine_config(index),
                                max_batch=self._max_batch,
                                max_batch_delay=self._max_batch_delay,
                            )
                        )
                except BaseException:
                    for shard in shards:
                        shard._abort()
                    raise
            except (OSError, ValueError) as error:
                # Same discipline as ProcessPoolBackend: degrade loudly to
                # the in-process path instead of refusing to serve.
                self.fallback_reason = (
                    f"process shards unavailable ({type(error).__name__}: {error})"
                )
                self._shards = self._inline_shards()
            else:
                self._shards = shards
        else:
            self._shards = self._inline_shards()

    # -- registration (process shards only) ---------------------------------------

    def _shipment(self, name: str) -> dict:
        """Train (or fail) the tenant in the router and package the shipment."""
        spec = self._service.tenant(name).spec
        try:
            result = self._service.train(name)
        except WiSeDBError as error:
            if not self._service.degraded_fallback:
                raise
            # Ship the error itself: the worker lane re-raises it at session
            # creation, producing the identical sticky degraded reason.
            return {"spec": spec.to_dict(), "training": ("error", _pickle_error(error)), "evaluator": None}
        segment = None
        if shm.shared_memory_available():
            evaluator = result.model.compiled_evaluator()
            bundle = self._bundles.get(id(evaluator))
            if bundle is None:
                bundle = shm.pack_evaluator(evaluator)
                self._bundles[id(evaluator)] = bundle
            segment = bundle.name
        return {
            "spec": spec.to_dict(),
            "training": ("result", result.to_dict()),
            "evaluator": segment,
        }

    async def _register(self, name: str) -> int:
        # The one shard_of call (one sha256) this tenant will ever pay;
        # afterwards submits hit the _routes dict directly.
        index = shard_of(name, self._num_shards)
        shard = self._shards[index]
        if shard.kind == "inline":
            self._tenants[name] = index
            self._routes[name] = shard
            return index
        tenant = self._service.tenant(name)
        guard = ExitStack()
        guard.enter_context(tenant.exclusive("serving"))
        try:
            payload = {"name": name, **self._shipment(name)}
            await shard.register(payload)
        except BaseException:
            guard.close()
            raise
        self._guards[name] = guard
        self._tenants[name] = index
        self._routes[name] = shard
        return index

    async def _shard_for(self, name: str):
        shard = self._routes.get(name)
        if shard is not None:
            return shard
        task = self._registrations.get(name)
        if task is None:
            task = asyncio.get_running_loop().create_task(self._register(name))
            self._registrations[name] = task
        try:
            index = await task
        except BaseException:
            # Leave failed registrations retryable, like lazy lane creation.
            if self._registrations.get(name) is task:
                del self._registrations[name]
            raise
        return self._shards[index]

    # -- serving -------------------------------------------------------------------

    async def warm(self, *tenants: str) -> None:
        """Create (and train/ship) the given tenants' lanes up front."""
        if self._closed:
            raise SpecificationError("the sharded serving engine is closed")
        self._ensure_started()
        for name in tenants:
            await self._shard_for(name)

    async def submit(self, tenant: str, query: Query, ticket: bool = False) -> Admission:
        """Offer one query to *tenant*'s shard (see :meth:`ServingEngine.submit`).

        On process shards this is pipelined: the query is credit-checked,
        appended to the shard's outbox, and the call returns without waiting
        for a pipe round trip.  With ``ticket=True`` the admission carries a
        :class:`ServingTicket` resolved by the worker's streamed decision
        frame.
        """
        if self._closed:
            raise SpecificationError("the sharded serving engine is closed")
        self._ensure_started()
        shard = self._routes.get(tenant)
        if shard is None:
            shard = await self._shard_for(tenant)
        return await shard.submit(tenant, query, ticket)

    async def drain(self) -> None:
        """Wait until every admitted query on every shard has been decided."""
        if not self._started:
            return
        await asyncio.gather(*(shard.drain() for shard in self._shards))

    async def close(self) -> None:
        """Close every shard, merge outcomes, and log run history once.

        History rows are written by the router in sorted tenant order —
        deterministic regardless of shard count or per-shard close timing.
        """
        if self._closed:
            return
        self._closed = True
        outcomes: dict[str, SchedulingOutcome] = {}
        states: dict[str, tuple[str, object]] = {}
        try:
            for shard in self._shards:
                shard_outcomes, shard_states = await shard.close()
                outcomes.update(shard_outcomes)
                states.update(shard_states)
        finally:
            for guard in self._guards.values():
                guard.close()
            self._guards.clear()
            for bundle in self._bundles.values():
                bundle.close()
                bundle.unlink()
            self._bundles.clear()
        self._outcomes = outcomes
        self._lane_states = states
        for name in sorted(outcomes):
            self._service._record_history(name, outcomes[name], "serving")

    # -- observability -------------------------------------------------------------

    async def metrics(self) -> ServingMetrics:
        """Per-shard snapshots merged into one engine-wide view.

        Entries are ordered by first submission, like the single-process
        engine's lane order; every per-tenant entry is a shard lane's counters
        verbatim, so ``check_identities`` holds on each even mid-drain.
        """
        if not self._started:
            return ServingMetrics(status="closed" if self._closed else "ok")
        snapshots = await asyncio.gather(
            *(shard.metrics() for shard in self._shards)
        )
        merged = merge_metrics(snapshots, closed=self._closed)
        entries = {entry.tenant: entry for entry in merged.tenants}
        # Queries the router's credit gate refused never reached a worker,
        # so fold the router-side shed counts into the per-tenant entries
        # to keep submitted == admitted + shed engine-wide.
        for shard in self._shards:
            for name, count in shard.shed_counts.items():
                entry = entries.get(name)
                if entry is None:
                    entries[name] = TenantMetrics(
                        tenant=name,
                        submitted=count,
                        admitted=0,
                        shed=count,
                        decided=0,
                        degraded=0,
                        failed=0,
                        queue_depth=0,
                        in_flight=0,
                        epochs=0,
                        retrains=0,
                        cache_hits=0,
                        decision_p50=math.nan,
                        decision_p99=math.nan,
                    )
                else:
                    entries[name] = replace(
                        entry,
                        submitted=entry.submitted + count,
                        shed=entry.shed + count,
                    )
        order = {name: position for position, name in enumerate(self._tenants)}
        ordered = sorted(
            entries.values(),
            key=lambda entry: order.get(entry.tenant, len(order)),
        )
        return ServingMetrics(
            status=merged.status,
            tenants=tuple(ordered),
            batches_sent=sum(shard.batches_sent for shard in self._shards),
            batched_queries=sum(shard.batched_queries for shard in self._shards),
        )

    async def health(self) -> str:
        """Worst per-shard status (same precedence as the single engine)."""
        return (await self.metrics()).status

    def outcome(self, tenant: str) -> SchedulingOutcome:
        """The tenant's priced outcome (after :meth:`close`); see
        :meth:`ServingEngine.outcome` for the exact semantics mirrored here."""
        if not self._closed:
            raise SpecificationError(
                "close() the engine before asking for priced outcomes"
            )
        if tenant not in self._tenants:
            raise SpecificationError(f"tenant {tenant!r} was never served")
        state, detail = self._lane_states.get(tenant, ("ok", None))
        if state == "failed":
            error = detail if isinstance(detail, BaseException) else _unpickle_error(detail)
            raise error
        if state == "degraded":
            raise SpecificationError(
                f"tenant {tenant!r} was served entirely degraded "
                f"({detail}); no learned outcome exists"
            )
        outcome = self._outcomes.get(tenant)
        if outcome is None:
            raise SpecificationError(
                f"tenant {tenant!r} has no priceable outcome "
                "(no queries were admitted, or its shard was lost)"
            )
        return outcome
