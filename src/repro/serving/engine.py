"""The asyncio serving front end over a :class:`~repro.service.WiSeDBService`.

:class:`ServingEngine` turns the call-into-it service into a long-lived
endpoint: many tenants are multiplexed over one event loop, each behind a
*lane* — a bounded admission queue, a worker task, and an incremental
:class:`~repro.runtime.online.OnlineSession` holding that tenant's online
scheduler state.  The design commitments:

**Epoch batching is preserved.**  The worker coalesces same-timestamp
arrivals back into one scheduling epoch (PR 3 semantics) before calling
``session.submit``: a pending epoch is decided when a later-timestamped query
arrives (the watermark), when the queue empties with no producer blocked on
admission (the eager path that keeps interactive latency low), or at close.
Because ``OnlineScheduler.run`` is itself implemented over the same session
type, a lane's decisions and final costs are **bit-identical** to feeding the
equivalent workload straight into the scheduler — the serving equivalence
suite locks this for every goal kind and catalog.

**Backpressure is explicit.**  When a lane's admission queue is full,
``backpressure="block"`` suspends the submitter until the worker catches up
(open-loop drivers then record the delay as decision latency), while
``backpressure="shed"`` refuses the query immediately with a reason and
counts it — nothing is dropped silently.

**Failures degrade, loudly.**  If a lane's learned path fails (model
missing, training error, a placement the model cannot express), the lane
flips sticky-degraded: every subsequent epoch is served by the model-free FFD
heuristic and stamped with the triggering error, mirroring the service's
``degraded_fallback`` contract.  With the fallback disabled the lane fails
closed instead and re-raises on the next submit.

**One writer per tenant.**  A lane holds its tenant's single-writer guard for
its whole lifetime, so a concurrent ``service.run_online`` against an
actively served tenant raises :class:`~repro.exceptions.ConcurrencyError`
instead of interleaving online state.
"""

from __future__ import annotations

import asyncio
import math
import time
from contextlib import ExitStack
from dataclasses import dataclass, replace

from repro.baselines.first_fit import FirstFitDecreasingScheduler
from repro.core.scheduler import SchedulingOutcome
from repro.exceptions import SpecificationError, WiSeDBError
from repro.runtime.online import OnlineOptimizations, OnlineSession
from repro.service.service import Tenant, WiSeDBService
from repro.serving.metrics import ServingMetrics, TenantMetrics, percentile
from repro.workloads.query import Query
from repro.workloads.workload import Workload

#: Queue sentinel asking a lane worker to flush its pending epoch and exit.
_CLOSE = object()

#: Per-lane decision-latency window; halved when it overflows so snapshots
#: reflect recent behavior without unbounded growth.
_LATENCY_WINDOW = 200_000

#: Backpressure policies: suspend the submitter vs. refuse with a reason.
BACKPRESSURE_POLICIES = ("block", "shed")


@dataclass(frozen=True)
class ServingDecision:
    """One query's answer: where it runs, decided at which epoch.

    Degraded decisions (served by the FFD fallback) carry ``degraded=True``
    and the sticky lane reason; their VM placement fields are ``None``
    because the heuristic's bin choice is not part of the learned schedule.
    """

    tenant: str
    query_id: int
    template_name: str
    epoch_time: float
    latency_seconds: float
    vm_index: int | None = None
    vm_type_name: str | None = None
    start_time: float | None = None
    completion_time: float | None = None
    degraded: bool = False
    degraded_reason: str | None = None


class ServingTicket:
    """An awaitable handle on one submitted query's decision."""

    __slots__ = ("_future",)

    def __init__(self, future: asyncio.Future) -> None:
        self._future = future

    def done(self) -> bool:
        """Whether the decision has been made."""
        return self._future.done()

    def add_done_callback(self, fn) -> None:
        """Schedule ``fn(future)`` on the loop once the decision resolves.

        The callback receives the underlying future (result: the
        :class:`ServingDecision`; or the lane's failure as its exception).
        This is how the sharded worker streams ticket resolutions back over
        the pipe without parking one task per in-flight query.
        """
        self._future.add_done_callback(fn)

    async def decision(self) -> ServingDecision:
        """Wait for (and return) the decision for this query."""
        return await self._future


@dataclass(frozen=True)
class Admission:
    """The immediate result of :meth:`ServingEngine.submit`."""

    admitted: bool
    shed_reason: str | None = None
    ticket: ServingTicket | None = None


#: Shared fast-path result: admitted, no ticket requested.
_ADMITTED = Admission(True)


class _TenantLane:
    """One tenant's admission queue, worker, session, and counters."""

    __slots__ = (
        "name",
        "tenant",
        "session",
        "queue",
        "pending",
        "pending_time",
        "blocked_putters",
        "last_submitted_time",
        "submitted",
        "admitted",
        "shed",
        "decided",
        "degraded",
        "failed",
        "degraded_epochs",
        "latencies",
        "degraded_reason",
        "failure",
        "worker",
        "guard",
        "outcome",
    )

    def __init__(
        self,
        name: str,
        tenant: Tenant,
        session: OnlineSession | None,
        queue_limit: int,
        guard: ExitStack,
    ) -> None:
        self.name = name
        self.tenant = tenant
        self.session = session
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_limit)
        self.pending: list[tuple] = []
        self.pending_time = -math.inf
        self.blocked_putters = 0
        self.last_submitted_time = -math.inf
        self.submitted = 0
        self.admitted = 0
        self.shed = 0
        self.decided = 0
        self.degraded = 0
        self.failed = 0
        self.degraded_epochs = 0
        self.latencies: list[float] = []
        self.degraded_reason: str | None = None
        self.failure: WiSeDBError | None = None
        self.worker: asyncio.Task | None = None
        self.guard = guard
        #: The priced outcome, computed once at close and reused afterwards.
        self.outcome: SchedulingOutcome | None = None

    @property
    def in_flight(self) -> int:
        return self.queue.qsize() + len(self.pending)

    @property
    def epochs(self) -> int:
        learned = self.session.epochs if self.session is not None else 0
        return learned + self.degraded_epochs


class ServingEngine:
    """An async, multi-tenant, backpressured front end over a service.

    Use as an async context manager::

        async with ServingEngine(service) as engine:
            await engine.submit("acme", query)
            ...
            await engine.drain()
            print(engine.metrics().describe())
        outcome = engine.outcome("acme")   # after close: priced, unified

    Lanes are created lazily on a tenant's first submit (training the model
    on demand through the service's registry path); pass ``warm`` tenant
    names to pay that cost up front instead of on the first request.
    """

    def __init__(
        self,
        service: WiSeDBService,
        queue_limit: int = 1024,
        backpressure: str = "block",
        wait_resolution: float = 30.0,
        optimizations: OnlineOptimizations | None = None,
        log_outcomes: bool = True,
    ) -> None:
        if backpressure not in BACKPRESSURE_POLICIES:
            raise SpecificationError(
                f"unknown backpressure policy {backpressure!r}; "
                f"choose from {BACKPRESSURE_POLICIES}"
            )
        if queue_limit < 1:
            raise SpecificationError("queue_limit must be at least 1")
        self._service = service
        self._queue_limit = queue_limit
        self._backpressure = backpressure
        self._wait_resolution = wait_resolution
        self._optimizations = optimizations
        #: When False, close() still prices every lane but leaves run-history
        #: logging to the caller — the sharded front end sets this on its
        #: per-shard engines so history is written once, in a deterministic
        #: order, by the router.
        self._log_outcomes = log_outcomes
        self._lanes: dict[str, _TenantLane] = {}
        self._closed = False

    async def __aenter__(self) -> "ServingEngine":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- lane lifecycle ----------------------------------------------------------------

    def warm(self, *tenants: str) -> None:
        """Create (and train) the given tenants' lanes up front."""
        for name in tenants:
            self._lane(name)

    def _lane(self, name: str) -> _TenantLane:
        lane = self._lanes.get(name)
        if lane is not None:
            return lane
        tenant = self._service.tenant(name)
        guard = ExitStack()
        guard.enter_context(tenant.exclusive("serving"))
        try:
            session: OnlineSession | None
            reason = None
            try:
                scheduler = self._service.online_scheduler(
                    name,
                    optimizations=self._optimizations,
                    wait_resolution=self._wait_resolution,
                )
                session = scheduler.session()
            except WiSeDBError as error:
                if not self._service.degraded_fallback:
                    raise
                session = None
                reason = f"{type(error).__name__}: {error}"
        except BaseException:
            guard.close()
            raise
        lane = _TenantLane(name, tenant, session, self._queue_limit, guard)
        lane.degraded_reason = reason
        lane.worker = asyncio.get_running_loop().create_task(
            self._worker(lane), name=f"wisedb-serving-{name}"
        )
        self._lanes[name] = lane
        return lane

    # -- admission ----------------------------------------------------------------------

    async def submit(
        self, tenant: str, query: Query, ticket: bool = False
    ) -> Admission:
        """Offer one query to *tenant*'s lane.

        Returns an :class:`Admission`: admitted (optionally with an awaitable
        :class:`ServingTicket` when ``ticket=True``), or shed with a reason
        under the ``shed`` backpressure policy.  Arrival times must be
        non-decreasing per tenant; a failed lane re-raises its error.
        """
        if self._closed:
            raise SpecificationError("the serving engine is closed")
        lane = self._lane(tenant)
        if lane.failure is not None:
            raise lane.failure
        if query.arrival_time < lane.last_submitted_time:
            raise SpecificationError(
                f"tenant {tenant!r}: arrival times must be non-decreasing "
                f"(got {query.arrival_time} after {lane.last_submitted_time})"
            )
        future = asyncio.get_running_loop().create_future() if ticket else None
        item = (query, time.perf_counter(), future)
        queue = lane.queue
        if queue.full():
            if self._backpressure == "shed":
                lane.submitted += 1
                lane.shed += 1
                return Admission(
                    False,
                    shed_reason=(
                        f"admission queue full "
                        f"(limit={self._queue_limit}) for tenant {tenant!r}"
                    ),
                )
            # Block: suspend this submitter until the worker catches up.  The
            # worker will not close a same-timestamp epoch while we are
            # suspended here (it checks ``blocked_putters``), so a burst that
            # overflows the queue still lands in one epoch.
            lane.blocked_putters += 1
            try:
                await queue.put(item)
            finally:
                lane.blocked_putters -= 1
        else:
            queue.put_nowait(item)
        lane.submitted += 1
        lane.admitted += 1
        lane.last_submitted_time = query.arrival_time
        if future is not None:
            return Admission(True, ticket=ServingTicket(future))
        return _ADMITTED

    # -- the lane worker ----------------------------------------------------------------

    async def _worker(self, lane: _TenantLane) -> None:
        queue = lane.queue
        while True:
            item = await queue.get()
            closing = item is _CLOSE
            if not closing:
                self._absorb(lane, item)
            # Drain whatever else is already queued without yielding: a burst
            # enqueued back-to-back is parsed as one batch of epochs.
            while True:
                try:
                    extra = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is _CLOSE:
                    closing = True
                    continue
                self._absorb(lane, extra)
            if lane.pending and (
                closing or (queue.empty() and lane.blocked_putters == 0)
            ):
                self._decide(lane)
            if closing:
                queue.task_done()
                return

    def _absorb(self, lane: _TenantLane, item: tuple) -> None:
        """Fold one admitted item into the pending epoch (watermark flush)."""
        query = item[0]
        if lane.pending and query.arrival_time != lane.pending_time:
            self._decide(lane)
        lane.pending.append(item)
        lane.pending_time = query.arrival_time

    def _decide(self, lane: _TenantLane) -> None:
        """Decide the pending epoch through the learned (or degraded) path."""
        group = lane.pending
        lane.pending = []
        queries = [item[0] for item in group]
        if lane.degraded_reason is not None:
            self._decide_degraded(lane, group, queries)
            return
        try:
            decision = lane.session.submit(queries)
        except WiSeDBError as error:
            if not self._service.degraded_fallback:
                self._fail(lane, group, error)
                return
            lane.degraded_reason = f"{type(error).__name__}: {error}"
            self._decide_degraded(lane, group, queries)
            return
        decided_at = time.perf_counter()
        lane.decided += len(group)
        self._record(lane, group, decided_at)
        for query, _, future in group:
            if future is not None and not future.cancelled():
                placement = decision.placement_for(query.query_id)
                future.set_result(
                    ServingDecision(
                        tenant=lane.name,
                        query_id=query.query_id,
                        template_name=query.template_name,
                        epoch_time=decision.epoch_time,
                        latency_seconds=lane.latencies[-1],
                        vm_index=placement.vm_index,
                        vm_type_name=placement.vm_type_name,
                        start_time=placement.start_time,
                        completion_time=placement.completion_time,
                    )
                )
            lane.queue.task_done()

    def _decide_degraded(
        self, lane: _TenantLane, group: list[tuple], queries: list[Query]
    ) -> None:
        spec = lane.tenant.spec
        try:
            FirstFitDecreasingScheduler(
                vm_type=spec.vm_types.default,
                goal=spec.goal,
                latency_model=spec.resolved_latency_model(),
            ).schedule(Workload(spec.templates, queries))
        except WiSeDBError as error:
            self._fail(lane, group, error)
            return
        decided_at = time.perf_counter()
        lane.decided += len(group)
        lane.degraded += len(group)
        lane.degraded_epochs += 1
        self._record(lane, group, decided_at)
        epoch_time = queries[0].arrival_time
        for query, _, future in group:
            if future is not None and not future.cancelled():
                future.set_result(
                    ServingDecision(
                        tenant=lane.name,
                        query_id=query.query_id,
                        template_name=query.template_name,
                        epoch_time=epoch_time,
                        latency_seconds=lane.latencies[-1],
                        degraded=True,
                        degraded_reason=lane.degraded_reason,
                    )
                )
            lane.queue.task_done()

    def _fail(
        self, lane: _TenantLane, group: list[tuple], error: WiSeDBError
    ) -> None:
        """Fail the lane closed: refuse this epoch, re-raise on later submits."""
        lane.failure = error
        lane.failed += len(group)
        for _, _, future in group:
            if future is not None and not future.cancelled():
                future.set_exception(error)
            lane.queue.task_done()

    @staticmethod
    def _record(lane: _TenantLane, group: list[tuple], decided_at: float) -> None:
        latencies = lane.latencies
        if len(latencies) >= _LATENCY_WINDOW:
            del latencies[: _LATENCY_WINDOW // 2]
        for _, submitted_at, _ in group:
            latencies.append(decided_at - submitted_at)

    # -- lifecycle ----------------------------------------------------------------------

    async def drain(self) -> None:
        """Wait until every admitted query has been decided (or failed)."""
        await asyncio.gather(*(lane.queue.join() for lane in self._lanes.values()))

    async def close(self) -> None:
        """Flush pending epochs, stop the workers, release tenant guards."""
        if self._closed:
            return
        self._closed = True
        for lane in self._lanes.values():
            await lane.queue.put(_CLOSE)
        workers = [lane.worker for lane in self._lanes.values() if lane.worker]
        if workers:
            await asyncio.gather(*workers)
        for lane in self._lanes.values():
            lane.guard.close()
        outcomes = self.collect_outcomes()
        if self._log_outcomes:
            for name, outcome in outcomes.items():
                self._service._record_history(name, outcome, "serving")

    def collect_outcomes(self) -> dict[str, SchedulingOutcome]:
        """Price each completed lane once (lane insertion order).

        Failed lanes, never-admitted lanes, and lanes that ran entirely
        degraded (no learned session) have no priceable outcome and are
        skipped.  With outcome logging enabled (the default) the result also
        lands in the registry's ``run_history`` under ``source="serving"`` at
        close, next to the service's batch/online rows; the sharded front end
        disables that and logs the merged map itself.
        """
        outcomes: dict[str, SchedulingOutcome] = {}
        for lane in self._lanes.values():
            if lane.failure is not None or lane.session is None or lane.admitted == 0:
                continue
            if lane.outcome is None:
                try:
                    outcome = lane.session.outcome()
                except WiSeDBError:
                    # Close must succeed even if a lane cannot be priced.
                    continue
                if lane.degraded_reason is not None:
                    outcome = replace(
                        outcome, degraded=True, degraded_reason=lane.degraded_reason
                    )
                lane.outcome = outcome
            outcomes[lane.name] = lane.outcome
        return outcomes

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has completed admission shutdown."""
        return self._closed

    # -- observability ------------------------------------------------------------------

    def health(self) -> str:
        """``failed`` > ``closed`` > ``overloaded`` > ``degraded`` > ``ok``."""
        lanes = self._lanes.values()
        if any(lane.failure is not None for lane in lanes):
            return "failed"
        if self._closed:
            return "closed"
        if any(
            lane.queue.full() or lane.blocked_putters for lane in lanes
        ):
            return "overloaded"
        if any(lane.degraded_reason is not None for lane in lanes):
            return "degraded"
        return "ok"

    def metrics(self) -> ServingMetrics:
        """A consistent snapshot of every lane's counters and latencies."""
        entries = []
        for lane in self._lanes.values():
            session = lane.session
            entries.append(
                TenantMetrics(
                    tenant=lane.name,
                    submitted=lane.submitted,
                    admitted=lane.admitted,
                    shed=lane.shed,
                    decided=lane.decided,
                    degraded=lane.degraded,
                    failed=lane.failed,
                    queue_depth=lane.queue.qsize(),
                    in_flight=lane.in_flight,
                    epochs=lane.epochs,
                    retrains=session.retrains if session is not None else 0,
                    cache_hits=session.cache_hits if session is not None else 0,
                    decision_p50=percentile(lane.latencies, 0.50),
                    decision_p99=percentile(lane.latencies, 0.99),
                    degraded_reason=lane.degraded_reason,
                )
            )
        return ServingMetrics(status=self.health(), tenants=tuple(entries))

    def outcome(self, tenant: str) -> SchedulingOutcome:
        """The tenant's priced, unified outcome (only after :meth:`close`).

        Bit-identical to ``OnlineScheduler.run`` on the equivalent workload
        for a healthy lane; a lane that served degraded epochs has its
        learned-path outcome stamped ``degraded`` with the sticky reason, and
        a failed lane re-raises its error.
        """
        if not self._closed:
            raise SpecificationError(
                "close() the engine before asking for priced outcomes"
            )
        lane = self._lanes.get(tenant)
        if lane is None:
            raise SpecificationError(f"tenant {tenant!r} was never served")
        if lane.failure is not None:
            raise lane.failure
        if lane.session is None:
            raise SpecificationError(
                f"tenant {tenant!r} was served entirely degraded "
                f"({lane.degraded_reason}); no learned outcome exists"
            )
        if lane.outcome is not None:
            return lane.outcome
        outcome = lane.session.outcome()
        if lane.degraded_reason is not None:
            outcome = replace(
                outcome, degraded=True, degraded_reason=lane.degraded_reason
            )
        lane.outcome = outcome
        return outcome
