"""Training datasets: (features, decision) pairs harvested from optimal schedules.

The training set (Section 4.4) contains one example per edge of each sample
workload's optimal path: the features of the edge's origin vertex, labelled
with the action taken (place template X / provision a VM of type Y).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import TrainingError


@dataclass(frozen=True)
class TrainingExample:
    """One labelled decision from an optimal schedule."""

    features: dict[str, float]
    label: str

    def value(self, feature_name: str) -> float:
        """Value of *feature_name* (0.0 when the feature is absent)."""
        return self.features.get(feature_name, 0.0)


def examples_from_matrix(
    feature_names: Sequence[str],
    matrix: np.ndarray,
    labels: Sequence[str],
) -> list[TrainingExample]:
    """Labelled examples from a dense feature matrix (vectorized fast path).

    The inverse of :meth:`TrainingSet.to_matrix`: row *i* becomes the feature
    mapping of example *i* in the canonical *feature_names* order.  Values
    round-trip through numpy bit-identically, so a training set assembled this
    way is indistinguishable from one built with per-vertex
    :meth:`~repro.learning.features.FeatureExtractor.extract` dicts.
    """
    if matrix.shape[0] != len(labels):
        raise TrainingError("feature matrix and labels disagree on example count")
    if matrix.shape[1] != len(feature_names):
        raise TrainingError("feature matrix and feature_names disagree on width")
    names = tuple(feature_names)
    return [
        TrainingExample(features=dict(zip(names, row)), label=label)
        for row, label in zip(matrix.tolist(), labels)
    ]


class TrainingSet:
    """An ordered collection of training examples with a fixed feature order."""

    def __init__(
        self,
        feature_names: Sequence[str],
        examples: Iterable[TrainingExample] = (),
    ) -> None:
        self._feature_names = tuple(feature_names)
        self._examples: list[TrainingExample] = list(examples)

    # -- mutation ------------------------------------------------------------

    def add(self, example: TrainingExample) -> None:
        """Append one example."""
        self._examples.append(example)

    def extend(self, examples: Iterable[TrainingExample]) -> None:
        """Append many examples."""
        self._examples.extend(examples)

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._examples)

    def __iter__(self) -> Iterator[TrainingExample]:
        return iter(self._examples)

    def __getitem__(self, index: int) -> TrainingExample:
        return self._examples[index]

    # -- accessors ----------------------------------------------------------------

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Feature order used when converting to matrices."""
        return self._feature_names

    @property
    def examples(self) -> tuple[TrainingExample, ...]:
        """All examples, in insertion order."""
        return tuple(self._examples)

    def labels(self) -> list[str]:
        """Label of every example, in insertion order."""
        return [example.label for example in self._examples]

    def label_counts(self) -> Counter[str]:
        """How many examples carry each label."""
        return Counter(example.label for example in self._examples)

    def distinct_labels(self) -> tuple[str, ...]:
        """The distinct labels present, sorted."""
        return tuple(sorted(self.label_counts()))

    def to_matrix(self) -> tuple[np.ndarray, list[str]]:
        """(feature matrix, label list) in the canonical feature order."""
        if not self._examples:
            raise TrainingError("cannot convert an empty training set to a matrix")
        matrix = np.asarray(
            [
                [example.features.get(name, 0.0) for name in self._feature_names]
                for example in self._examples
            ],
            dtype=float,
        )
        return matrix, self.labels()

    def without_features(self, names: Iterable[str]) -> "TrainingSet":
        """A copy with the given feature columns removed (used by ablations)."""
        dropped = set(names)
        kept = tuple(n for n in self._feature_names if n not in dropped)
        examples = [
            TrainingExample(
                features={k: v for k, v in example.features.items() if k not in dropped},
                label=example.label,
            )
            for example in self._examples
        ]
        return TrainingSet(kept, examples)

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable representation.

        Example features are stored as dense value rows in the canonical
        feature order; features absent from an example's mapping read as 0.0
        exactly as :meth:`to_matrix` treats them, so a restored set produces a
        bit-identical training matrix.
        """
        names = self._feature_names
        return {
            "feature_names": list(names),
            "examples": [
                {
                    "label": example.label,
                    "values": [example.features.get(name, 0.0) for name in names],
                }
                for example in self._examples
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrainingSet":
        """Rebuild a training set from :meth:`to_dict` output."""
        names = tuple(data["feature_names"])
        examples = [
            TrainingExample(
                features=dict(zip(names, entry["values"])), label=entry["label"]
            )
            for entry in data["examples"]
        ]
        return cls(names, examples)

    def merged_with(self, other: "TrainingSet") -> "TrainingSet":
        """A new training set containing this set's and *other*'s examples."""
        if self._feature_names != other.feature_names:
            raise TrainingError("cannot merge training sets with different feature orders")
        return TrainingSet(self._feature_names, list(self._examples) + list(other.examples))
