"""Zero-copy shipping of flat numpy arrays through shared memory.

The sharded serving engine (:mod:`repro.serving.sharded`) partitions tenants
across worker processes.  Each worker needs the tenant's compiled decision
tree on its hot path, and a
:class:`~repro.learning.decision_tree.CompiledTreeEvaluator` is already five
flat parallel arrays — exactly the representation POSIX shared memory wants.
So instead of pickling trees into every worker (O(model size x shards) RSS),
the parent packs the arrays into one ``multiprocessing.shared_memory``
segment and workers map it read-only: each attachment costs a handful of view
objects on the worker heap, not a copy of the payload.

Segment layout::

    [4-byte magic "WSHM"] [u32 version] [u64 header length]
    [JSON header: array names, dtypes, shapes, relative offsets, free-form meta]
    [padding to 64-byte boundary]
    [array 0 bytes] [padding] [array 1 bytes] ...

Lifecycle is explicit and asymmetric, mirroring POSIX semantics:

* the *owner* (the process that called :func:`pack_arrays`) holds a
  :class:`SharedArrayBundle` and must eventually call both ``close()`` (unmap)
  and ``unlink()`` (remove the name from the system);
* *readers* (:func:`attach_arrays`) hold a :class:`SharedArrayView` and only
  ever ``close()`` — a reader must never unlink a segment it does not own,
  and is deliberately unregistered from the ``resource_tracker`` so that a
  crashing reader cannot reap (or warn about) the owner's segment.

Attaching to a name the owner already unlinked raises
:class:`~repro.exceptions.SharedMemoryError` (a ``WiSeDBError``), not a bare
``FileNotFoundError``.
"""

from __future__ import annotations

import json
import struct
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.exceptions import SharedMemoryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.learning.decision_tree import CompiledTreeEvaluator

_MAGIC = b"WSHM"
_VERSION = 1
_PREFIX = struct.Struct("<4sIQ")
_ALIGNMENT = 64

#: Attribute names of the evaluator's flat parallel arrays, in layout order.
EVALUATOR_ARRAYS = ("feature", "threshold", "left", "right", "leaf_label")


def _shared_memory_module():
    """The stdlib shared-memory module (indirection point for tests)."""
    from multiprocessing import shared_memory

    return shared_memory


def shared_memory_available() -> bool:
    """Probe whether POSIX shared memory actually works on this platform.

    Import success is not enough: containers without a usable ``/dev/shm``
    fail only at segment creation, so a tiny segment is created and
    immediately destroyed.  Callers (the sharded engine, benches) use this to
    fall back to in-process serving rather than crash mid-registration.
    """
    try:
        shared_memory = _shared_memory_module()
        segment = shared_memory.SharedMemory(create=True, size=16)
    except Exception:
        return False
    segment.close()
    segment.unlink()
    return True


def _tracker_already_running() -> bool:
    """Whether this process already shares a resource tracker.

    True in the owning process and in its ``fork`` children (the tracker
    pipe is inherited); False in a fresh process (``spawn`` children,
    unrelated attachers) whose first registration would start its own
    tracker.
    """
    try:
        from multiprocessing import resource_tracker

        return getattr(resource_tracker._resource_tracker, "_fd", None) is not None
    except Exception:  # pragma: no cover - tracker layout varies by platform
        return False


def _untrack(segment) -> None:
    """Unregister an *attached* segment from the resource tracker.

    On POSIX every ``SharedMemory`` — attached or created — registers with
    the ``resource_tracker``, which unlinks (and warns about) any segment
    still registered when its process tree exits.  A reader with its *own*
    tracker (a ``spawn`` worker, an unrelated process) must therefore
    unregister, or its exit reaps the owner's live segment with a "leaked
    shared_memory" warning.  Python 3.13 grew ``track=False`` for this; on
    older versions the best-effort unregister below is the documented
    workaround.  Readers that *share* the owner's tracker (same process, or
    ``fork`` children) must NOT unregister — registrations are keyed per
    name in the one shared tracker, so unregistering there would erase the
    owner's entry and make the owner's ``unlink`` warn instead.  The caller
    checks :func:`_tracker_already_running` to tell the two apart.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker layout varies by platform
        pass


def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


class SharedArrayBundle:
    """Owner handle for a packed segment.

    ``close()`` unmaps the owner's view; ``unlink()`` removes the segment
    from the system (readers attached before the unlink keep working until
    they close).  The context-manager form does both on exit.
    """

    __slots__ = ("_segment", "name", "nbytes", "_unlinked")

    def __init__(self, segment, nbytes: int) -> None:
        self._segment = segment
        self.name = segment.name
        self.nbytes = nbytes
        self._unlinked = False

    def close(self) -> None:
        try:
            self._segment.close()
        except BufferError:  # views still alive; mapping released at their GC
            pass

    def unlink(self) -> None:
        if not self._unlinked:
            self._unlinked = True
            self._segment.unlink()

    def __enter__(self) -> "SharedArrayBundle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        self.unlink()


class SharedArrayView:
    """Reader handle: read-only numpy views over an attached segment."""

    __slots__ = ("_segment", "name", "arrays", "meta")

    def __init__(self, segment, arrays: dict[str, np.ndarray], meta: dict) -> None:
        self._segment = segment
        self.name = segment.name
        self.arrays = arrays
        self.meta = meta

    def close(self) -> None:
        self.arrays = {}
        try:
            self._segment.close()
        except BufferError:
            # An evaluator still holds the views; the mapping is released
            # when those arrays are garbage collected.
            pass

    def __enter__(self) -> "SharedArrayView":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def pack_arrays(
    arrays: Mapping[str, np.ndarray], meta: dict | None = None
) -> SharedArrayBundle:
    """Publish *arrays* into a fresh shared-memory segment.

    Returns the owner's :class:`SharedArrayBundle`; readers attach by
    ``bundle.name``.  *meta* is a JSON-able dict carried verbatim in the
    header (labels, feature names, ...).
    """
    if not arrays:
        raise SharedMemoryError("cannot pack an empty array mapping")
    entries = []
    relative = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        relative = _align(relative)
        entries.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": relative,
                "array": array,
            }
        )
        relative += array.nbytes
    header = {
        "arrays": [
            {key: entry[key] for key in ("name", "dtype", "shape", "offset")}
            for entry in entries
        ],
        "meta": meta or {},
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    payload_base = _align(_PREFIX.size + len(header_bytes))
    total = max(1, payload_base + relative)

    shared_memory = _shared_memory_module()
    try:
        segment = shared_memory.SharedMemory(create=True, size=total)
    except OSError as error:
        raise SharedMemoryError(
            f"could not create a {total}-byte shared-memory segment: {error}"
        ) from error
    try:
        buffer = segment.buf
        _PREFIX.pack_into(buffer, 0, _MAGIC, _VERSION, len(header_bytes))
        buffer[_PREFIX.size : _PREFIX.size + len(header_bytes)] = header_bytes
        for entry in entries:
            array = entry["array"]
            view = np.ndarray(
                array.shape,
                dtype=array.dtype,
                buffer=buffer,
                offset=payload_base + entry["offset"],
            )
            view[...] = array
            del view
    except BaseException:
        segment.close()
        segment.unlink()
        raise
    return SharedArrayBundle(segment, total)


def attach_arrays(name: str) -> SharedArrayView:
    """Attach read-only views to a segment published by :func:`pack_arrays`.

    Raises :class:`~repro.exceptions.SharedMemoryError` when the segment does
    not exist (typically: the owner already unlinked it) or its header is not
    one of ours.
    """
    shared_memory = _shared_memory_module()
    try:
        try:
            segment = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13: no track parameter
            shared_tracker = _tracker_already_running()
            segment = shared_memory.SharedMemory(name=name)
            if not shared_tracker:
                _untrack(segment)
    except FileNotFoundError as error:
        raise SharedMemoryError(
            f"shared-memory segment {name!r} does not exist "
            "(was it already unlinked by its owner?)"
        ) from error
    try:
        buffer = segment.buf
        if len(buffer) < _PREFIX.size:
            raise SharedMemoryError(
                f"segment {name!r} is too small to hold a WSHM header"
            )
        magic, version, header_length = _PREFIX.unpack_from(buffer, 0)
        if magic != _MAGIC:
            raise SharedMemoryError(f"segment {name!r} is not a WSHM segment")
        if version != _VERSION:
            raise SharedMemoryError(
                f"segment {name!r} has WSHM version {version}; "
                f"this library reads version {_VERSION}"
            )
        try:
            header = json.loads(
                bytes(buffer[_PREFIX.size : _PREFIX.size + header_length])
            )
        except ValueError as error:
            raise SharedMemoryError(
                f"segment {name!r} has a corrupt WSHM header"
            ) from error
        payload_base = _align(_PREFIX.size + header_length)
        arrays: dict[str, np.ndarray] = {}
        for entry in header["arrays"]:
            view = np.ndarray(
                tuple(entry["shape"]),
                dtype=np.dtype(entry["dtype"]),
                buffer=buffer,
                offset=payload_base + entry["offset"],
            )
            view.flags.writeable = False
            arrays[entry["name"]] = view
    except BaseException:
        segment.close()
        raise
    return SharedArrayView(segment, arrays, header.get("meta", {}))


def pack_evaluator(evaluator: "CompiledTreeEvaluator") -> SharedArrayBundle:
    """Publish a compiled tree evaluator's flat arrays into shared memory."""
    arrays = {name: getattr(evaluator, name) for name in EVALUATOR_ARRAYS}
    meta = {
        "kind": "compiled-tree-evaluator",
        "labels": list(evaluator.labels),
        "feature_names": list(evaluator.feature_names),
    }
    return pack_arrays(arrays, meta=meta)


def attach_evaluator(name: str) -> tuple["CompiledTreeEvaluator", SharedArrayView]:
    """Rebuild an evaluator over shared views of a packed segment.

    Returns ``(evaluator, view)``; the caller must keep *view* alive for as
    long as the evaluator is in use and ``close()`` it afterwards.  The
    evaluator's predictions are bit-identical to the owner's — the arrays are
    literally the owner's bytes.
    """
    from repro.learning.decision_tree import CompiledTreeEvaluator

    view = attach_arrays(name)
    try:
        if view.meta.get("kind") != "compiled-tree-evaluator":
            raise SharedMemoryError(
                f"segment {name!r} does not hold a compiled tree evaluator"
            )
        missing = [key for key in EVALUATOR_ARRAYS if key not in view.arrays]
        if missing:
            raise SharedMemoryError(
                f"segment {name!r} is missing evaluator arrays: {missing}"
            )
        evaluator = CompiledTreeEvaluator.from_arrays(
            feature=view.arrays["feature"],
            threshold=view.arrays["threshold"],
            left=view.arrays["left"],
            right=view.arrays["right"],
            leaf_label=view.arrays["leaf_label"],
            labels=tuple(view.meta["labels"]),
            feature_names=tuple(view.meta["feature_names"]),
        )
    except BaseException:
        view.close()
        raise
    return evaluator, view
