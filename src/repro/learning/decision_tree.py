"""A from-scratch C4.5-style decision-tree classifier.

The paper trains its workload-management models with Weka's J48 learner, which
implements C4.5: greedy top-down induction with binary splits on numeric
attributes chosen by information gain ratio.  This module provides an
equivalent learner with no third-party ML dependency so the reproduction is
self-contained (scikit-learn is deliberately not required).

The learner handles exactly what the WiSeDB feature set needs:

* numeric (and 0/1 boolean) features with binary ``<= threshold`` splits;
* multi-class string labels (one class per template-placement or
  VM-provisioning action);
* simple regularisation (max depth, minimum leaf size, minimum gain) so the
  trees stay shallow — the paper reports heights below 30, which is what makes
  model-guided scheduling O(h·n).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import TrainingError

#: Maximum number of candidate thresholds evaluated per feature per node.
_MAX_THRESHOLDS = 128


@dataclass
class TreeNode:
    """One node of a fitted decision tree."""

    #: Number of training examples that reached this node.
    samples: int
    #: Per-label counts of those examples.
    class_counts: dict[str, int]
    #: Majority label at this node (used by leaves and as a fallback).
    label: str
    #: Split definition for internal nodes (``None`` for leaves).
    feature_index: int | None = None
    feature_name: str | None = None
    threshold: float | None = None
    left: "TreeNode | None" = field(default=None, repr=False)
    right: "TreeNode | None" = field(default=None, repr=False)

    @property
    def is_leaf(self) -> bool:
        """True when the node has no split."""
        return self.feature_index is None


def _entropy(counts: np.ndarray) -> float:
    """Shannon entropy (bits) of a vector of class counts."""
    total = counts.sum()
    if total <= 0:
        return 0.0
    probabilities = counts[counts > 0] / total
    return float(-(probabilities * np.log2(probabilities)).sum())


def _entropy_rows(counts: np.ndarray, totals: np.ndarray) -> np.ndarray:
    """Shannon entropy (bits) of each row of a (rows, classes) count matrix.

    Vectorised counterpart of :func:`_entropy` used by the split search: one
    call scores every candidate boundary of a feature instead of one numpy
    round-trip per boundary.  Zero-count entries contribute exactly 0 to the
    row sums, matching the scalar version's filtered computation.
    """
    probabilities = counts / totals[:, None]
    terms = np.zeros_like(probabilities)
    mask = counts > 0
    terms[mask] = probabilities[mask] * np.log2(probabilities[mask])
    return -terms.sum(axis=1)


class CompiledTreeEvaluator:
    """A fitted tree flattened into parallel arrays for fast prediction.

    The node-object walk of :meth:`DecisionTreeClassifier.predict_vector`
    chases one Python object per level, reading four attributes per hop.  The
    compiled form stores the whole tree as parallel arrays indexed by a
    preorder node id — split feature column, threshold, left/right child ids,
    and a leaf-label id — so a prediction is a tight loop over flat lists
    (scalar path) or a vectorized level-synchronous descent over numpy arrays
    (matrix path).  Predictions are bit-identical to the node walk: same
    thresholds, same ``<=`` comparisons, same labels.

    ``feature_names`` optionally re-maps the tree's split columns onto an
    external feature order (e.g. a :class:`~repro.learning.features.FeatureExtractor`'s
    canonical row layout).  A split on a feature absent from that order is
    constant-folded the way :meth:`DecisionTreeClassifier.predict` treats
    missing features — the value reads as ``0.0``, so the branch is decided at
    compile time.
    """

    __slots__ = (
        "feature",
        "threshold",
        "left",
        "right",
        "leaf_label",
        "labels",
        "feature_names",
        "_feature_list",
        "_threshold_list",
        "_left_list",
        "_right_list",
        "_leaf_list",
    )

    def __init__(self, root: TreeNode, feature_names: Sequence[str]) -> None:
        column_of = {name: index for index, name in enumerate(feature_names)}
        features: list[int] = []
        thresholds: list[float] = []
        lefts: list[int] = []
        rights: list[int] = []
        leaf_labels: list[int] = []
        label_ids: dict[str, int] = {}

        def _flatten(node: TreeNode) -> int:
            while not node.is_leaf:
                assert node.feature_name is not None and node.threshold is not None
                column = column_of.get(node.feature_name)
                if column is not None:
                    break
                # Missing feature: reads as 0.0, so the branch is constant.
                assert node.left is not None and node.right is not None
                node = node.left if 0.0 <= node.threshold else node.right
            index = len(features)
            if node.is_leaf:
                features.append(-1)
                thresholds.append(0.0)
                lefts.append(-1)
                rights.append(-1)
                leaf_labels.append(label_ids.setdefault(node.label, len(label_ids)))
                return index
            assert node.left is not None and node.right is not None
            features.append(column_of[node.feature_name])
            thresholds.append(float(node.threshold))
            lefts.append(-1)
            rights.append(-1)
            leaf_labels.append(-1)
            lefts[index] = _flatten(node.left)
            rights[index] = _flatten(node.right)
            return index

        _flatten(root)
        self.feature_names = tuple(feature_names)
        self.labels: tuple[str, ...] = tuple(
            sorted(label_ids, key=label_ids.__getitem__)
        )
        # Plain lists for the scalar hot loop (Python list indexing beats
        # numpy item access), numpy arrays for the vectorized matrix descent.
        self._feature_list = features
        self._threshold_list = thresholds
        self._left_list = lefts
        self._right_list = rights
        self._leaf_list = leaf_labels
        self.feature = np.asarray(features, dtype=np.int64)
        self.threshold = np.asarray(thresholds, dtype=float)
        self.left = np.asarray(lefts, dtype=np.int64)
        self.right = np.asarray(rights, dtype=np.int64)
        self.leaf_label = np.asarray(leaf_labels, dtype=np.int64)

    @classmethod
    def from_arrays(
        cls,
        feature,
        threshold,
        left,
        right,
        leaf_label,
        labels: Sequence[str],
        feature_names: Sequence[str],
    ) -> "CompiledTreeEvaluator":
        """Rebuild an evaluator around existing flat arrays, without a tree.

        Used by :mod:`repro.learning.shm` to attach an evaluator to
        shared-memory views (and by tests/benches to clone one): the arrays
        are adopted as-is — no copy — and the scalar hot path indexes them
        directly in place of the list mirrors the compiling constructor
        builds, so an attached evaluator adds O(1) heap per process
        regardless of tree size.  Predictions are bit-identical to the
        compiling constructor's: same thresholds, same ``<=`` comparisons,
        same labels.
        """
        feature = np.asarray(feature)
        threshold = np.asarray(threshold)
        left = np.asarray(left)
        right = np.asarray(right)
        leaf_label = np.asarray(leaf_label)
        nodes = feature.shape[0] if feature.ndim == 1 else -1
        for array in (threshold, left, right, leaf_label):
            if array.ndim != 1 or array.shape[0] != nodes or nodes <= 0:
                raise TrainingError(
                    "from_arrays expects five equal-length one-dimensional arrays"
                )
        evaluator = object.__new__(cls)
        evaluator.feature = feature
        evaluator.threshold = threshold
        evaluator.left = left
        evaluator.right = right
        evaluator.leaf_label = leaf_label
        evaluator.labels = tuple(labels)
        evaluator.feature_names = tuple(feature_names)
        # The scalar path reads these slots by index only, which numpy arrays
        # support identically to lists — sharing the arrays keeps the attach
        # zero-copy.
        evaluator._feature_list = feature
        evaluator._threshold_list = threshold
        evaluator._left_list = left
        evaluator._right_list = right
        evaluator._leaf_list = leaf_label
        return evaluator

    def predict_row(self, row) -> str:
        """Label for one feature row in this evaluator's column order."""
        features = self._feature_list
        thresholds = self._threshold_list
        lefts = self._left_list
        rights = self._right_list
        index = 0
        column = features[0]
        while column >= 0:
            if row[column] <= thresholds[index]:
                index = lefts[index]
            else:
                index = rights[index]
            column = features[index]
        return self.labels[self._leaf_list[index]]

    def predict_matrix(self, matrix: np.ndarray) -> list[str]:
        """Labels for a ``(n_rows, n_features)`` matrix, one descent per level.

        All rows step down one tree level per iteration, so the loop runs
        ``height`` times regardless of row count instead of ``height`` times
        per row.
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise TrainingError("predict_matrix expects a two-dimensional matrix")
        n_rows = matrix.shape[0]
        if n_rows == 0:
            return []
        positions = np.zeros(n_rows, dtype=np.int64)
        row_indices = np.arange(n_rows)
        while True:
            columns = self.feature[positions]
            active = columns >= 0
            if not active.any():
                break
            rows = row_indices[active]
            current = positions[rows]
            go_left = (
                matrix[rows, self.feature[current]] <= self.threshold[current]
            )
            positions[rows] = np.where(go_left, self.left[current], self.right[current])
        return [self.labels[index] for index in self.leaf_label[positions]]


class DecisionTreeClassifier:
    """C4.5-style classifier over numeric features and string labels."""

    def __init__(
        self,
        max_depth: int = 30,
        min_samples_leaf: int = 2,
        min_samples_split: int = 4,
        min_gain: float = 1e-9,
    ) -> None:
        if max_depth < 1:
            raise TrainingError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise TrainingError("min_samples_leaf must be >= 1")
        self._max_depth = max_depth
        self._min_samples_leaf = min_samples_leaf
        self._min_samples_split = max(min_samples_split, 2 * min_samples_leaf)
        self._min_gain = min_gain
        self._root: TreeNode | None = None
        self._feature_names: tuple[str, ...] = ()
        self._classes: tuple[str, ...] = ()
        #: feature-order key -> CompiledTreeEvaluator (reset whenever the
        #: fitted tree changes; compiling is O(nodes) but the evaluator is
        #: reused for every decision of a scheduling run).
        self._compiled_cache: dict[tuple[str, ...], CompiledTreeEvaluator] = {}

    # -- fitting ------------------------------------------------------------------

    def fit(
        self,
        matrix: np.ndarray,
        labels: Sequence[str],
        feature_names: Sequence[str],
        presort: bool = True,
    ) -> "DecisionTreeClassifier":
        """Fit the tree on a (n_examples, n_features) matrix and string labels.

        ``presort=True`` (the default) sorts every feature column once up
        front and maintains the per-feature sorted row orders through the
        splits (classic C4.5 presorting): each node partitions the parent's
        orders with one boolean mask per feature instead of re-running a
        stable ``argsort`` per (node, feature).  Both paths evaluate the
        identical candidate thresholds in the identical sequence, so the
        fitted trees are bit-identical (property-tested); ``presort=False``
        keeps the legacy per-node sorting as the reference path.
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise TrainingError("feature matrix must be two-dimensional")
        if matrix.shape[0] == 0:
            raise TrainingError("cannot fit a decision tree on an empty training set")
        if matrix.shape[0] != len(labels):
            raise TrainingError("feature matrix and labels disagree on example count")
        if matrix.shape[1] != len(feature_names):
            raise TrainingError("feature matrix and feature_names disagree on width")

        self._feature_names = tuple(feature_names)
        self._classes = tuple(sorted(set(labels)))
        class_index = {label: i for i, label in enumerate(self._classes)}
        encoded = np.asarray([class_index[label] for label in labels], dtype=int)
        if presort:
            # One stable sort per feature over the full training set; the
            # recursion below only ever *filters* these orders, which keeps
            # every node's per-feature order equal to what a fresh stable
            # argsort of its row subset would produce (ties resolve by
            # original row position either way).
            sorted_all = np.argsort(matrix, axis=0, kind="stable")
            orders = [np.ascontiguousarray(sorted_all[:, j]) for j in range(matrix.shape[1])]
            scratch = np.zeros(matrix.shape[0], dtype=bool)
            self._root = self._build_presorted(matrix, encoded, orders, scratch, depth=0)
        else:
            self._root = self._build(matrix, encoded, depth=0)
        self._compiled_cache.clear()
        return self

    def _build(self, matrix: np.ndarray, encoded: np.ndarray, depth: int) -> TreeNode:
        counts = np.bincount(encoded, minlength=len(self._classes))
        node = TreeNode(
            samples=int(encoded.size),
            class_counts={
                self._classes[i]: int(count) for i, count in enumerate(counts) if count
            },
            label=self._classes[int(np.argmax(counts))],
        )
        if (
            depth >= self._max_depth
            or encoded.size < self._min_samples_split
            or np.count_nonzero(counts) <= 1
        ):
            return node

        split = self._best_split(matrix, encoded, counts)
        if split is None:
            return node

        feature_index, threshold = split
        mask = matrix[:, feature_index] <= threshold
        node.feature_index = feature_index
        node.feature_name = self._feature_names[feature_index]
        node.threshold = threshold
        node.left = self._build(matrix[mask], encoded[mask], depth + 1)
        node.right = self._build(matrix[~mask], encoded[~mask], depth + 1)
        return node

    def _build_presorted(
        self,
        matrix: np.ndarray,
        encoded: np.ndarray,
        orders: list[np.ndarray],
        scratch: np.ndarray,
        depth: int,
    ) -> TreeNode:
        """Recursive induction over presorted per-feature row orders.

        ``orders[f]`` lists this node's row ids sorted by feature ``f``
        (stable, ties by original row position) — exactly the order the
        legacy path's per-node ``argsort`` would produce, so both paths feed
        :meth:`_score_feature` identical sequences and grow identical trees.
        ``matrix``/``encoded`` stay global (never sliced); ``scratch`` is one
        shared boolean row-mask reused (and reset) by every partition.
        """
        rows = orders[0]
        counts = np.bincount(encoded[rows], minlength=len(self._classes))
        node = TreeNode(
            samples=int(rows.size),
            class_counts={
                self._classes[i]: int(count) for i, count in enumerate(counts) if count
            },
            label=self._classes[int(np.argmax(counts))],
        )
        if (
            depth >= self._max_depth
            or rows.size < self._min_samples_split
            or np.count_nonzero(counts) <= 1
        ):
            return node

        parent_entropy = _entropy(counts.astype(float))
        if parent_entropy <= 0.0:
            return node
        total = int(rows.size)
        row_indices = np.arange(total)
        best: tuple[float, float, int, float] | None = None
        for feature_index, order in enumerate(orders):
            candidate = self._score_feature(
                matrix[order, feature_index],
                encoded[order],
                counts,
                total,
                parent_entropy,
                row_indices,
            )
            if candidate is not None:
                scored = (candidate[0], candidate[1], feature_index, candidate[2])
                if best is None or scored[:2] > best[:2]:
                    best = scored
        if best is None:
            return node
        feature_index, threshold = best[2], best[3]

        # Partition every feature's order by the chosen split with one boolean
        # gather per feature — the presort's whole point: no re-sorting.  The
        # split feature's order is already sorted by value, so its left side
        # is a prefix.
        split_order = orders[feature_index]
        boundary = int(
            np.searchsorted(matrix[split_order, feature_index], threshold, side="right")
        )
        left_rows = split_order[:boundary]
        scratch[left_rows] = True
        left_orders = []
        right_orders = []
        for order in orders:
            goes_left = scratch[order]
            left_orders.append(order[goes_left])
            right_orders.append(order[~goes_left])
        scratch[left_rows] = False

        node.feature_index = feature_index
        node.feature_name = self._feature_names[feature_index]
        node.threshold = threshold
        node.left = self._build_presorted(matrix, encoded, left_orders, scratch, depth + 1)
        node.right = self._build_presorted(matrix, encoded, right_orders, scratch, depth + 1)
        return node

    def _best_split(
        self, matrix: np.ndarray, encoded: np.ndarray, counts: np.ndarray
    ) -> tuple[int, float] | None:
        parent_entropy = _entropy(counts.astype(float))
        if parent_entropy <= 0.0:
            return None
        total = encoded.size
        row_indices = np.arange(total)
        best: tuple[float, float, int, float] | None = None  # (gain_ratio, gain, feat, thr)

        for feature_index in range(matrix.shape[1]):
            column = matrix[:, feature_index]
            order = np.argsort(column, kind="stable")
            candidate = self._score_feature(
                column[order], encoded[order], counts, total, parent_entropy, row_indices
            )
            if candidate is not None:
                scored = (candidate[0], candidate[1], feature_index, candidate[2])
                if best is None or scored[:2] > best[:2]:
                    best = scored

        if best is None:
            return None
        return best[2], best[3]

    def _score_feature(
        self,
        sorted_values: np.ndarray,
        sorted_labels: np.ndarray,
        counts: np.ndarray,
        total: int,
        parent_entropy: float,
        row_indices: np.ndarray,
    ) -> tuple[float, float, float] | None:
        """Best ``(gain_ratio, gain, threshold)`` of one pre-sorted feature.

        Shared by the legacy per-node-argsort path and the presorted path so
        the two cannot drift: both hand over the identical (values, labels)
        sequence and therefore score the identical candidate boundaries.
        """
        n_classes = len(self._classes)
        min_leaf = self._min_samples_leaf

        # Candidate split positions: boundaries between distinct values.
        boundaries = np.nonzero(np.diff(sorted_values) > 0)[0]
        if boundaries.size == 0:
            return None
        if boundaries.size > _MAX_THRESHOLDS:
            step = boundaries.size / _MAX_THRESHOLDS
            picks = (np.arange(_MAX_THRESHOLDS) * step).astype(int)
            boundaries = boundaries[picks]

        left_sizes = boundaries + 1
        right_sizes = total - left_sizes
        admissible = (left_sizes >= min_leaf) & (right_sizes >= min_leaf)
        if not admissible.any():
            return None
        boundaries = boundaries[admissible]
        left_sizes = left_sizes[admissible]
        right_sizes = right_sizes[admissible]

        # Per-boundary class counts via a segmented bincount: bucket k holds
        # the rows between boundaries k-1 and k, so a cumulative sum over
        # the (num_boundaries, num_classes) bucket matrix yields every
        # boundary's left-side counts without materialising an
        # (examples, classes) one-hot prefix per feature.
        num_boundaries = boundaries.size
        segments = np.searchsorted(boundaries, row_indices, side="left")
        buckets = np.bincount(
            segments * n_classes + sorted_labels,
            minlength=(num_boundaries + 1) * n_classes,
        ).reshape(num_boundaries + 1, n_classes)
        left_counts = np.cumsum(buckets[:num_boundaries], axis=0)
        right_counts = counts - left_counts
        gains = parent_entropy - (
            left_sizes / total * _entropy_rows(left_counts, left_sizes.astype(float))
            + right_sizes
            / total
            * _entropy_rows(right_counts, right_sizes.astype(float))
        )
        useful = gains > self._min_gain
        if not useful.any():
            return None
        boundaries = boundaries[useful]
        gains = gains[useful]
        left_fraction = left_sizes[useful] / total
        right_fraction = right_sizes[useful] / total
        # Both sides are non-empty, so the split information is positive.
        split_info = -(
            left_fraction * np.log2(left_fraction)
            + right_fraction * np.log2(right_fraction)
        )
        gain_ratios = gains / split_info

        # First boundary with the lexicographically largest (ratio, gain),
        # matching the sequential loop's strict-improvement order.
        top = np.nonzero(gain_ratios == gain_ratios.max())[0]
        pick = top[int(np.argmax(gains[top]))]
        boundary = int(boundaries[pick])

        left_value = float(sorted_values[boundary])
        right_value = float(sorted_values[boundary + 1])
        threshold = (left_value + right_value) / 2.0
        if not (left_value <= threshold < right_value):
            # The midpoint of adjacent distinct values can collapse onto the
            # right value (denormal underflow: mean(-5e-324, 0.0) == -0.0,
            # and 0.0 <= -0.0 is True) or escape the interval entirely
            # (overflow to ±inf).  A ``<= threshold`` test must keep the
            # left value on the left and the right value on the right, and
            # the left value itself always satisfies that.
            threshold = left_value
        return (float(gain_ratios[pick]), float(gains[pick]), threshold)

    # -- prediction ----------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has been called."""
        return self._root is not None

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Feature names, in the column order the tree was fitted on."""
        return self._feature_names

    @property
    def classes(self) -> tuple[str, ...]:
        """The distinct labels seen during fitting."""
        return self._classes

    def _require_fitted(self) -> TreeNode:
        if self._root is None:
            raise TrainingError("the decision tree has not been fitted")
        return self._root

    def predict_vector(self, vector: Sequence[float]) -> str:
        """Predict the label for a feature vector in canonical column order."""
        node = self._require_fitted()
        while not node.is_leaf:
            assert node.feature_index is not None and node.threshold is not None
            if vector[node.feature_index] <= node.threshold:
                assert node.left is not None
                node = node.left
            else:
                assert node.right is not None
                node = node.right
        return node.label

    def predict(self, features: Mapping[str, float]) -> str:
        """Predict the label for a feature mapping (missing features read as 0)."""
        vector = [features.get(name, 0.0) for name in self._feature_names]
        return self.predict_vector(vector)

    def compiled(
        self, feature_names: Sequence[str] | None = None
    ) -> CompiledTreeEvaluator:
        """The tree flattened into a :class:`CompiledTreeEvaluator` (cached).

        *feature_names* selects the column order the evaluator's rows use; it
        defaults to the order the tree was fitted on.  Evaluators are cached
        per order and invalidated when the tree is refitted.
        """
        root = self._require_fitted()
        key = tuple(feature_names) if feature_names is not None else self._feature_names
        evaluator = self._compiled_cache.get(key)
        if evaluator is None:
            evaluator = CompiledTreeEvaluator(root, key)
            self._compiled_cache[key] = evaluator
        return evaluator

    def predict_matrix(self, matrix: np.ndarray) -> list[str]:
        """Labels for a matrix in the tree's fitted column order (vectorized)."""
        return self.compiled().predict_matrix(matrix)

    def decision_path(self, features: Mapping[str, float]) -> list[TreeNode]:
        """The internal nodes and leaf visited while classifying *features*."""
        node = self._require_fitted()
        path = [node]
        vector = [features.get(name, 0.0) for name in self._feature_names]
        while not node.is_leaf:
            assert node.feature_index is not None and node.threshold is not None
            node = node.left if vector[node.feature_index] <= node.threshold else node.right
            assert node is not None
            path.append(node)
        return path

    # -- introspection ----------------------------------------------------------------

    def depth(self) -> int:
        """Height of the fitted tree (a single leaf has depth 0)."""

        def _depth(node: TreeNode) -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self._require_fitted())

    def node_count(self) -> int:
        """Total number of nodes (internal plus leaves)."""

        def _count(node: TreeNode) -> int:
            if node.is_leaf:
                return 1
            assert node.left is not None and node.right is not None
            return 1 + _count(node.left) + _count(node.right)

        return _count(self._require_fitted())

    def leaf_count(self) -> int:
        """Number of leaves."""

        def _count(node: TreeNode) -> int:
            if node.is_leaf:
                return 1
            assert node.left is not None and node.right is not None
            return _count(node.left) + _count(node.right)

        return _count(self._require_fitted())

    def feature_importances(self) -> dict[str, float]:
        """Fraction of training examples routed through splits on each feature."""
        root = self._require_fitted()
        importances: Counter[str] = Counter()

        def _walk(node: TreeNode) -> None:
            if node.is_leaf:
                return
            assert node.feature_name is not None
            importances[node.feature_name] += node.samples
            assert node.left is not None and node.right is not None
            _walk(node.left)
            _walk(node.right)

        _walk(root)
        total = sum(importances.values())
        if total == 0:
            return {}
        return {name: count / total for name, count in importances.items()}

    def to_text(self) -> str:
        """ASCII rendering of the tree (useful for debugging and the examples)."""
        root = self._require_fitted()
        lines: list[str] = []

        def _render(node: TreeNode, indent: str) -> None:
            if node.is_leaf:
                lines.append(f"{indent}-> {node.label}  (n={node.samples})")
                return
            lines.append(f"{indent}{node.feature_name} <= {node.threshold:.3f}?")
            assert node.left is not None and node.right is not None
            _render(node.left, indent + "  ")
            lines.append(f"{indent}{node.feature_name} > {node.threshold:.3f}?")
            _render(node.right, indent + "  ")

        _render(root, "")
        return "\n".join(lines)

    # -- serialization ----------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable representation of the fitted tree.

        Thresholds and counts round-trip exactly (floats survive JSON
        bit-for-bit), so a restored tree predicts identically to the original.
        """
        def _node(node: TreeNode) -> dict:
            data: dict = {
                "samples": node.samples,
                "class_counts": node.class_counts,
                "label": node.label,
            }
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                data["feature_index"] = node.feature_index
                data["threshold"] = node.threshold
                data["left"] = _node(node.left)
                data["right"] = _node(node.right)
            return data

        return {
            "max_depth": self._max_depth,
            "min_samples_leaf": self._min_samples_leaf,
            "min_samples_split": self._min_samples_split,
            "min_gain": self._min_gain,
            "feature_names": list(self._feature_names),
            "classes": list(self._classes),
            "root": _node(self._require_fitted()),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DecisionTreeClassifier":
        """Rebuild a fitted tree from :meth:`to_dict` output."""
        tree = cls(
            max_depth=data["max_depth"],
            min_samples_leaf=data["min_samples_leaf"],
            min_samples_split=data["min_samples_split"],
            min_gain=data["min_gain"],
        )
        tree._feature_names = tuple(data["feature_names"])
        tree._classes = tuple(data["classes"])
        feature_names = tree._feature_names

        def _node(entry: dict) -> TreeNode:
            node = TreeNode(
                samples=entry["samples"],
                class_counts=dict(entry["class_counts"]),
                label=entry["label"],
            )
            if "feature_index" in entry:
                node.feature_index = entry["feature_index"]
                node.feature_name = feature_names[entry["feature_index"]]
                node.threshold = entry["threshold"]
                node.left = _node(entry["left"])
                node.right = _node(entry["right"])
            return node

        tree._root = _node(data["root"])
        return tree

    def accuracy(self, matrix: np.ndarray, labels: Sequence[str]) -> float:
        """Training/holdout accuracy of the fitted tree on (matrix, labels)."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape[0] == 0:
            return math.nan
        correct = sum(
            1
            for row, label in zip(matrix, labels)
            if self.predict_vector(row) == label
        )
        return correct / matrix.shape[0]
