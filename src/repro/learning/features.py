"""Feature extraction from scheduling-graph vertices (Section 4.4).

Each decision on an optimal path is described by features of the vertex at
which the decision was taken.  The paper selects five families of features,
all independent of the workload size (training workloads are small, runtime
workloads are huge) and cheap to compute:

* ``wait-time`` — how long a query placed on the most recent VM would wait
  before starting (i.e. the total execution time already queued on that VM);
* ``proportion-of-X`` — the fraction of the most recent VM's queue made up of
  template ``X``;
* ``supports-X`` — whether the most recent VM's type can process template ``X``;
* ``cost-of-X`` — the weight of the placement edge for template ``X`` out of
  this vertex (Equation 2), i.e. execution cost plus any penalty incurred;
* ``have-X`` — whether at least one query of template ``X`` is still unassigned.

The same extractor is used during training (on A* vertices) and at runtime (on
the scheduler's current state), which guarantees that the model sees an
identical representation in both phases.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping

from repro.cloud.vm import VMTypeCatalog
from repro.search.problem import SchedulingProblem, SearchNode
from repro.workloads.templates import TemplateSet

#: Finite stand-in for "placement impossible" so decision-tree thresholds stay finite.
INFEASIBLE_COST = 1.0e12


def wait_time_feature() -> str:
    """Name of the wait-time feature."""
    return "wait_time"


def proportion_feature(template_name: str) -> str:
    """Name of the proportion-of-X feature for *template_name*."""
    return f"proportion_of[{template_name}]"


def supports_feature(template_name: str) -> str:
    """Name of the supports-X feature for *template_name*."""
    return f"supports[{template_name}]"


def cost_feature(template_name: str) -> str:
    """Name of the cost-of-X feature for *template_name*."""
    return f"cost_of[{template_name}]"


def have_feature(template_name: str) -> str:
    """Name of the have-X feature for *template_name*."""
    return f"have[{template_name}]"


#: The feature families the extractor can produce (used by the ablation bench).
FEATURE_FAMILIES: tuple[str, ...] = (
    "wait_time",
    "proportion_of",
    "supports",
    "cost_of",
    "have",
)


class FeatureExtractor:
    """Extracts the Section 4.4 feature vector from a search node."""

    def __init__(
        self,
        templates: TemplateSet,
        vm_types: VMTypeCatalog,
        families: tuple[str, ...] = FEATURE_FAMILIES,
    ) -> None:
        unknown = set(families) - set(FEATURE_FAMILIES)
        if unknown:
            raise ValueError(f"unknown feature families: {sorted(unknown)}")
        self._templates = templates
        self._vm_types = vm_types
        self._families = tuple(families)
        self._feature_names = self._build_feature_names()
        # Supports-X only depends on the VM type, so resolve the whole row once
        # per type instead of one supports() call per template per extraction.
        self._supports_rows: dict[str, tuple[float, ...]] = {
            vm_type.name: tuple(
                1.0 if vm_type.supports(name) else 0.0 for name in templates.names
            )
            for vm_type in vm_types
        }

    def _build_feature_names(self) -> tuple[str, ...]:
        names: list[str] = []
        if "wait_time" in self._families:
            names.append(wait_time_feature())
        for template in self._templates.names:
            if "proportion_of" in self._families:
                names.append(proportion_feature(template))
            if "supports" in self._families:
                names.append(supports_feature(template))
            if "cost_of" in self._families:
                names.append(cost_feature(template))
            if "have" in self._families:
                names.append(have_feature(template))
        return tuple(names)

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Names of the features produced, in a stable order."""
        return self._feature_names

    @property
    def families(self) -> tuple[str, ...]:
        """The feature families this extractor is configured to produce."""
        return self._families

    @property
    def templates(self) -> TemplateSet:
        """The template universe the per-template features are defined over."""
        return self._templates

    def extract(self, node: SearchNode, problem: SchedulingProblem) -> dict[str, float]:
        """The feature vector of *node* within *problem* (name → value).

        The per-template loop leans on precomputed state — the supports row of
        the most recent VM's type, a single queue histogram for the
        proportion-of-X family, and the problem's O(1)/O(log n) incremental
        ``placement_edge_cost`` — so extraction cost no longer scales with the
        number of queries already placed.
        """
        features: dict[str, float] = {}
        families = self._families
        last = node.state.last_vm()
        last_queue: tuple[str, ...] = last[1] if last is not None else ()
        queue_length = len(last_queue)

        if "wait_time" in families:
            features[wait_time_feature()] = node.last_vm_finish

        proportions = "proportion_of" in families
        queue_counts = Counter(last_queue) if proportions and queue_length else None
        supports = "supports" in families
        supports_row = (
            self._supports_rows[last[0]] if supports and last is not None else None
        )
        cost_of = "cost_of" in families
        have = "have" in families
        inf = float("inf")

        for index, template in enumerate(self._templates.names):
            if proportions:
                if queue_counts is not None:
                    proportion = queue_counts.get(template, 0) / queue_length
                else:
                    proportion = 0.0
                features[proportion_feature(template)] = proportion
            if supports:
                features[supports_feature(template)] = (
                    supports_row[index] if supports_row is not None else 0.0
                )
            if cost_of:
                cost = problem.placement_edge_cost(node, template)
                if cost == inf:
                    cost = INFEASIBLE_COST
                features[cost_feature(template)] = cost
            if have:
                features[have_feature(template)] = (
                    1.0 if node.state.has_remaining(template) else 0.0
                )
        return features

    def vector(self, features: Mapping[str, float]) -> list[float]:
        """Order a feature mapping into the extractor's canonical vector form."""
        return [features[name] for name in self._feature_names]
