"""Feature extraction from scheduling-graph vertices (Section 4.4).

Each decision on an optimal path is described by features of the vertex at
which the decision was taken.  The paper selects five families of features,
all independent of the workload size (training workloads are small, runtime
workloads are huge) and cheap to compute:

* ``wait-time`` — how long a query placed on the most recent VM would wait
  before starting (i.e. the total execution time already queued on that VM);
* ``proportion-of-X`` — the fraction of the most recent VM's queue made up of
  template ``X``;
* ``supports-X`` — whether the most recent VM's type can process template ``X``;
* ``cost-of-X`` — the weight of the placement edge for template ``X`` out of
  this vertex (Equation 2), i.e. execution cost plus any penalty incurred;
* ``have-X`` — whether at least one query of template ``X`` is still unassigned.

The same extractor is used during training (on A* vertices) and at runtime (on
the scheduler's current state), which guarantees that the model sees an
identical representation in both phases.
"""

from __future__ import annotations

from typing import Mapping

from repro.cloud.vm import VMTypeCatalog
from repro.search.problem import SchedulingProblem, SearchNode
from repro.workloads.templates import TemplateSet

#: Finite stand-in for "placement impossible" so decision-tree thresholds stay finite.
INFEASIBLE_COST = 1.0e12


def wait_time_feature() -> str:
    """Name of the wait-time feature."""
    return "wait_time"


def proportion_feature(template_name: str) -> str:
    """Name of the proportion-of-X feature for *template_name*."""
    return f"proportion_of[{template_name}]"


def supports_feature(template_name: str) -> str:
    """Name of the supports-X feature for *template_name*."""
    return f"supports[{template_name}]"


def cost_feature(template_name: str) -> str:
    """Name of the cost-of-X feature for *template_name*."""
    return f"cost_of[{template_name}]"


def have_feature(template_name: str) -> str:
    """Name of the have-X feature for *template_name*."""
    return f"have[{template_name}]"


#: The feature families the extractor can produce (used by the ablation bench).
FEATURE_FAMILIES: tuple[str, ...] = (
    "wait_time",
    "proportion_of",
    "supports",
    "cost_of",
    "have",
)


class FeatureExtractor:
    """Extracts the Section 4.4 feature vector from a search node."""

    def __init__(
        self,
        templates: TemplateSet,
        vm_types: VMTypeCatalog,
        families: tuple[str, ...] = FEATURE_FAMILIES,
    ) -> None:
        unknown = set(families) - set(FEATURE_FAMILIES)
        if unknown:
            raise ValueError(f"unknown feature families: {sorted(unknown)}")
        self._templates = templates
        self._vm_types = vm_types
        self._families = tuple(families)
        self._feature_names = self._build_feature_names()

    def _build_feature_names(self) -> tuple[str, ...]:
        names: list[str] = []
        if "wait_time" in self._families:
            names.append(wait_time_feature())
        for template in self._templates.names:
            if "proportion_of" in self._families:
                names.append(proportion_feature(template))
            if "supports" in self._families:
                names.append(supports_feature(template))
            if "cost_of" in self._families:
                names.append(cost_feature(template))
            if "have" in self._families:
                names.append(have_feature(template))
        return tuple(names)

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Names of the features produced, in a stable order."""
        return self._feature_names

    @property
    def families(self) -> tuple[str, ...]:
        """The feature families this extractor is configured to produce."""
        return self._families

    @property
    def templates(self) -> TemplateSet:
        """The template universe the per-template features are defined over."""
        return self._templates

    def extract(self, node: SearchNode, problem: SchedulingProblem) -> dict[str, float]:
        """The feature vector of *node* within *problem* (name → value)."""
        features: dict[str, float] = {}
        last = node.state.last_vm()
        last_queue: tuple[str, ...] = last[1] if last is not None else ()
        queue_length = len(last_queue)
        vm_type = self._vm_types[last[0]] if last is not None else None

        if "wait_time" in self._families:
            features[wait_time_feature()] = node.last_vm_finish

        for template in self._templates.names:
            if "proportion_of" in self._families:
                if queue_length:
                    proportion = last_queue.count(template) / queue_length
                else:
                    proportion = 0.0
                features[proportion_feature(template)] = proportion
            if "supports" in self._families:
                supported = vm_type is not None and vm_type.supports(template)
                features[supports_feature(template)] = 1.0 if supported else 0.0
            if "cost_of" in self._families:
                cost = problem.placement_edge_cost(node, template)
                if cost == float("inf"):
                    cost = INFEASIBLE_COST
                features[cost_feature(template)] = cost
            if "have" in self._families:
                features[have_feature(template)] = (
                    1.0 if node.state.has_remaining(template) else 0.0
                )
        return features

    def vector(self, features: Mapping[str, float]) -> list[float]:
        """Order a feature mapping into the extractor's canonical vector form."""
        return [features[name] for name in self._feature_names]
