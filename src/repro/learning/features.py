"""Feature extraction from scheduling-graph vertices (Section 4.4).

Each decision on an optimal path is described by features of the vertex at
which the decision was taken.  The paper selects five families of features,
all independent of the workload size (training workloads are small, runtime
workloads are huge) and cheap to compute:

* ``wait-time`` — how long a query placed on the most recent VM would wait
  before starting (i.e. the total execution time already queued on that VM);
* ``proportion-of-X`` — the fraction of the most recent VM's queue made up of
  template ``X``;
* ``supports-X`` — whether the most recent VM's type can process template ``X``;
* ``cost-of-X`` — the weight of the placement edge for template ``X`` out of
  this vertex (Equation 2), i.e. execution cost plus any penalty incurred;
* ``have-X`` — whether at least one query of template ``X`` is still unassigned.

The same extractor is used during training (on A* vertices) and at runtime (on
the scheduler's current state), which guarantees that the model sees an
identical representation in both phases.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping, Sequence

import numpy as np

from repro.cloud.vm import VMTypeCatalog
from repro.search.problem import SchedulingProblem, SearchNode
from repro.workloads.templates import TemplateSet

#: Finite stand-in for "placement impossible" so decision-tree thresholds stay finite.
INFEASIBLE_COST = 1.0e12


def wait_time_feature() -> str:
    """Name of the wait-time feature."""
    return "wait_time"


def proportion_feature(template_name: str) -> str:
    """Name of the proportion-of-X feature for *template_name*."""
    return f"proportion_of[{template_name}]"


def supports_feature(template_name: str) -> str:
    """Name of the supports-X feature for *template_name*."""
    return f"supports[{template_name}]"


def cost_feature(template_name: str) -> str:
    """Name of the cost-of-X feature for *template_name*."""
    return f"cost_of[{template_name}]"


def have_feature(template_name: str) -> str:
    """Name of the have-X feature for *template_name*."""
    return f"have[{template_name}]"


#: The feature families the extractor can produce (used by the ablation bench).
FEATURE_FAMILIES: tuple[str, ...] = (
    "wait_time",
    "proportion_of",
    "supports",
    "cost_of",
    "have",
)


class FeatureExtractor:
    """Extracts the Section 4.4 feature vector from a search node."""

    def __init__(
        self,
        templates: TemplateSet,
        vm_types: VMTypeCatalog,
        families: tuple[str, ...] = FEATURE_FAMILIES,
    ) -> None:
        unknown = set(families) - set(FEATURE_FAMILIES)
        if unknown:
            raise ValueError(f"unknown feature families: {sorted(unknown)}")
        self._templates = templates
        self._vm_types = vm_types
        self._families = tuple(families)
        self._feature_names = self._build_feature_names()
        # Supports-X only depends on the VM type, so resolve the whole row once
        # per type instead of one supports() call per template per extraction.
        self._supports_rows: dict[str, tuple[float, ...]] = {
            vm_type.name: tuple(
                1.0 if vm_type.supports(name) else 0.0 for name in templates.names
            )
            for vm_type in vm_types
        }
        self._build_columns()

    def _build_columns(self) -> None:
        """Precompute the column layout used by the vectorized fast path.

        The canonical feature order is ``wait_time`` (when enabled) followed by
        one fixed-size block per template, so every per-template family lands
        on a regular stride: family ``k`` of template ``j`` lives at column
        ``base + k + j * stride``.  :meth:`extract_into` exploits this with
        strided slice assignments instead of per-feature dict stores.
        """
        per_template = tuple(
            family
            for family in ("proportion_of", "supports", "cost_of", "have")
            if family in self._families
        )
        base = 1 if "wait_time" in self._families else 0
        self._wait_column = 0 if base else -1
        stride = len(per_template)
        num_templates = len(self._templates.names)

        def _columns(rank: int) -> tuple[int, ...]:
            return tuple(base + rank + stride * j for j in range(num_templates))

        starts = {family: rank for rank, family in enumerate(per_template)}
        self._proportion_columns: tuple[int, ...] | None = (
            _columns(starts["proportion_of"]) if "proportion_of" in starts else None
        )
        self._supports_columns: tuple[int, ...] | None = (
            _columns(starts["supports"]) if "supports" in starts else None
        )
        self._cost_columns: tuple[int, ...] | None = (
            _columns(starts["cost_of"]) if "cost_of" in starts else None
        )
        self._have_columns: tuple[int, ...] | None = (
            _columns(starts["have"]) if "have" in starts else None
        )
        self._proportion_column_of: dict[str, int] = (
            {
                name: column
                for name, column in zip(
                    self._templates.names, self._proportion_columns or ()
                )
            }
            if self._proportion_columns is not None
            else {}
        )
        self._template_names: tuple[str, ...] = self._templates.names
        # Cost-row provider of the problem most recently extracted against,
        # resolved once per problem object instead of via getattr per vertex.
        self._last_problem: object | None = None
        self._last_cost_row = None

    def _build_feature_names(self) -> tuple[str, ...]:
        names: list[str] = []
        if "wait_time" in self._families:
            names.append(wait_time_feature())
        for template in self._templates.names:
            if "proportion_of" in self._families:
                names.append(proportion_feature(template))
            if "supports" in self._families:
                names.append(supports_feature(template))
            if "cost_of" in self._families:
                names.append(cost_feature(template))
            if "have" in self._families:
                names.append(have_feature(template))
        return tuple(names)

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Names of the features produced, in a stable order."""
        return self._feature_names

    @property
    def families(self) -> tuple[str, ...]:
        """The feature families this extractor is configured to produce."""
        return self._families

    @property
    def templates(self) -> TemplateSet:
        """The template universe the per-template features are defined over."""
        return self._templates

    def extract(self, node: SearchNode, problem: SchedulingProblem) -> dict[str, float]:
        """The feature vector of *node* within *problem* (name → value).

        This is the dict-returning compatibility path (and the reference
        implementation the ``REPRO_SLOW_PATH=1`` escape hatch forces); the hot
        paths write preallocated numpy rows via :meth:`extract_into` /
        :meth:`matrix` instead, and the equivalence tests assert the two
        implementations agree feature-for-feature, bit-for-bit.

        The per-template loop leans on precomputed state — the supports row of
        the most recent VM's type, a single queue histogram for the
        proportion-of-X family, and the problem's O(1)/O(log n) incremental
        ``placement_edge_cost`` — so extraction cost no longer scales with the
        number of queries already placed.
        """
        features: dict[str, float] = {}
        families = self._families
        last = node.state.last_vm()
        last_queue: tuple[str, ...] = last[1] if last is not None else ()
        queue_length = len(last_queue)

        if "wait_time" in families:
            features[wait_time_feature()] = node.last_vm_finish

        proportions = "proportion_of" in families
        queue_counts = Counter(last_queue) if proportions and queue_length else None
        supports = "supports" in families
        supports_row = (
            self._supports_rows[last[0]] if supports and last is not None else None
        )
        cost_of = "cost_of" in families
        have = "have" in families
        inf = float("inf")

        for index, template in enumerate(self._templates.names):
            if proportions:
                if queue_counts is not None:
                    proportion = queue_counts.get(template, 0) / queue_length
                else:
                    proportion = 0.0
                features[proportion_feature(template)] = proportion
            if supports:
                features[supports_feature(template)] = (
                    supports_row[index] if supports_row is not None else 0.0
                )
            if cost_of:
                cost = problem.placement_edge_cost(node, template)
                if cost == inf:
                    cost = INFEASIBLE_COST
                features[cost_feature(template)] = cost
            if have:
                features[have_feature(template)] = (
                    1.0 if node.state.has_remaining(template) else 0.0
                )
        return features

    def extract_into(self, node: SearchNode, problem: SchedulingProblem, out_row):
        """Write the feature vector of *node* directly into *out_row*.

        *out_row* is any preallocated mutable row of ``len(feature_names)``
        entries — a numpy float64 row (the :meth:`matrix` path) or a plain
        list (the per-decision hot loop, where scalar list stores beat numpy
        item assignment at WiSeDB's feature-vector sizes).  Every enabled
        column is overwritten, so the buffer needs no zeroing between calls.
        The values are bit-identical to :meth:`extract`'s — same arithmetic,
        same order — but no per-vertex dict is built.  Returns *out_row*.
        """
        state = node.state
        last = state.last_vm()
        last_queue: tuple[str, ...] = last[1] if last is not None else ()
        names = self._template_names

        if self._wait_column >= 0:
            out_row[self._wait_column] = node.last_vm_finish

        proportion_columns = self._proportion_columns
        if proportion_columns is not None:
            for column in proportion_columns:
                out_row[column] = 0.0
            if last_queue:
                queue_length = len(last_queue)
                column_of = self._proportion_column_of
                # Inline histogram: the last VM's queue is short, so a dict
                # loop beats a Counter construction per vertex.
                counts: dict[str, int] = {}
                counts_get = counts.get
                for name in last_queue:
                    counts[name] = counts_get(name, 0) + 1
                for name, count in counts.items():
                    out_row[column_of[name]] = count / queue_length

        supports_columns = self._supports_columns
        if supports_columns is not None:
            if last is not None:
                for column, value in zip(supports_columns, self._supports_rows[last[0]]):
                    out_row[column] = value
            else:
                for column in supports_columns:
                    out_row[column] = 0.0

        cost_columns = self._cost_columns
        if cost_columns is not None:
            if problem is self._last_problem:
                cost_row = self._last_cost_row
            else:
                cost_row = getattr(problem, "placement_cost_row", None)
                self._last_problem = problem
                self._last_cost_row = cost_row
            if cost_row is not None:
                costs = cost_row(node, names)
            else:
                edge_cost = problem.placement_edge_cost
                costs = [edge_cost(node, name) for name in names]
            inf = float("inf")
            for column, cost in zip(cost_columns, costs):
                out_row[column] = INFEASIBLE_COST if cost == inf else cost

        have_columns = self._have_columns
        if have_columns is not None:
            present = state.remaining_name_set()
            for column, name in zip(have_columns, names):
                out_row[column] = 1.0 if name in present else 0.0
        return out_row

    def matrix(
        self, nodes: Sequence[SearchNode], problem: SchedulingProblem
    ) -> np.ndarray:
        """A ``(len(nodes), len(feature_names))`` feature matrix for *nodes*.

        Rows are written in place by :meth:`extract_into`; used by
        ``collect_examples`` when assembling training sets and by the runtime
        schedulers when batching decisions.
        """
        out = np.zeros((len(nodes), len(self._feature_names)), dtype=float)
        for index, node in enumerate(nodes):
            self.extract_into(node, problem, out[index])
        return out

    def vector(self, features: Mapping[str, float]) -> list[float]:
        """Order a feature mapping into the extractor's canonical vector form."""
        return [features[name] for name in self._feature_names]
