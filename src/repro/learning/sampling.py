"""Sample-workload generation for model training (Section 4.2).

The training pipeline draws ``N`` random sample workloads of ``m`` queries
each via *uniform direct sampling* of the query templates: every query in a
sample picks its template independently and uniformly at random.  Uniform
sampling yields a mixture of balanced and unbalanced samples, which is what
lets the learned model cope with both "usual" and skewed runtime workloads
(demonstrated in the paper's Section 7.5).
"""

from __future__ import annotations

from typing import Iterable

from repro.config import TrainingConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.templates import TemplateSet
from repro.workloads.workload import Workload


def training_workloads(
    templates: TemplateSet, config: TrainingConfig
) -> list[Workload]:
    """The ``N`` uniform sample workloads of ``m`` queries used for training."""
    generator = WorkloadGenerator(templates, seed=config.seed)
    return list(
        generator.sample_workloads(config.num_samples, config.queries_per_sample)
    )


def workload_counts(workloads: Iterable[Workload]) -> list[dict[str, int]]:
    """Per-sample template counts (the compact form stored for adaptive reuse)."""
    return [dict(workload.template_counts()) for workload in workloads]
