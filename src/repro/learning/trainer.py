"""The model-generation pipeline of Figure 4.

Given a workload specification (templates + VM catalogue) and a performance
goal, :class:`ModelGenerator` executes the paper's offline training loop:

1. draw ``N`` random sample workloads of ``m`` queries (Section 4.2);
2. find the minimum-cost schedule of each sample with A* over the scheduling
   graph (Section 4.3);
3. convert every decision on every optimal path into a labelled training
   example (Section 4.4);
4. fit a C4.5-style decision tree on the combined training set (Section 4.5).

The returned :class:`TrainingResult` keeps the training set and the per-sample
solutions so that the adaptive-modeling machinery (Section 5) can re-derive
models for stricter goals without re-generating workloads or re-searching from
scratch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cloud.latency import LatencyModel, TemplateLatencyModel
from repro.cloud.vm import VMTypeCatalog, single_vm_type_catalog
from repro.config import TrainingConfig
from repro.exceptions import SearchBudgetExceeded, TrainingError
from repro.learning.dataset import TrainingExample, TrainingSet
from repro.learning.decision_tree import DecisionTreeClassifier
from repro.learning.features import FEATURE_FAMILIES, FeatureExtractor
from repro.learning.model import DecisionModel, ModelMetadata
from repro.learning.sampling import training_workloads
from repro.search.astar import SearchResult, astar_search
from repro.search.problem import SchedulingProblem, SearchNode
from repro.sla.base import PerformanceGoal
from repro.workloads.templates import TemplateSet
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class SampleSolution:
    """The optimal solution of one training sample (kept for adaptive reuse)."""

    template_counts: dict[str, int]
    optimal_cost: float
    expansions: int


@dataclass
class TrainingResult:
    """Everything produced by one training run."""

    model: DecisionModel
    training_set: TrainingSet
    samples: list[SampleSolution]
    goal: PerformanceGoal
    config: TrainingConfig
    training_time: float
    search_time: float
    fit_time: float
    skipped_samples: int = 0
    workloads: list[Workload] = field(default_factory=list)

    @property
    def num_examples(self) -> int:
        """Number of labelled decisions in the training set."""
        return len(self.training_set)


def collect_examples(
    problem: SchedulingProblem,
    extractor: FeatureExtractor,
    max_expansions: int | None = None,
    extra_lower_bound: Callable[[SearchNode], float] | None = None,
) -> tuple[list[TrainingExample], SearchResult]:
    """Solve *problem* optimally and label every decision on the optimal path."""
    result = astar_search(
        problem, max_expansions=max_expansions, extra_lower_bound=extra_lower_bound
    )
    examples = [
        TrainingExample(features=extractor.extract(node, problem), label=action.label)
        for node, action in result.decisions()
    ]
    return examples, result


class ModelGenerator:
    """Trains WiSeDB decision models for a fixed workload specification."""

    def __init__(
        self,
        templates: TemplateSet,
        vm_types: VMTypeCatalog | None = None,
        latency_model: LatencyModel | None = None,
        config: TrainingConfig | None = None,
        feature_families: tuple[str, ...] = FEATURE_FAMILIES,
    ) -> None:
        self._templates = templates
        self._vm_types = vm_types or single_vm_type_catalog()
        self._latency_model = latency_model or TemplateLatencyModel(templates)
        self._config = config or TrainingConfig.fast()
        self._extractor = FeatureExtractor(templates, self._vm_types, feature_families)

    # -- accessors -----------------------------------------------------------------

    @property
    def templates(self) -> TemplateSet:
        """The workload specification models are trained for."""
        return self._templates

    @property
    def vm_types(self) -> VMTypeCatalog:
        """The VM catalogue models may provision from."""
        return self._vm_types

    @property
    def latency_model(self) -> LatencyModel:
        """The latency estimates used to cost schedules during training."""
        return self._latency_model

    @property
    def config(self) -> TrainingConfig:
        """The training configuration (sample counts, tree regularisation)."""
        return self._config

    @property
    def extractor(self) -> FeatureExtractor:
        """The feature extractor shared by training and runtime."""
        return self._extractor

    # -- training -------------------------------------------------------------------

    def generate(
        self,
        goal: PerformanceGoal,
        workloads: Sequence[Workload] | None = None,
    ) -> TrainingResult:
        """Train a decision model for *goal*.

        Parameters
        ----------
        goal:
            The performance goal the model should optimise for.
        workloads:
            Optional pre-generated sample workloads.  When omitted, the
            generator draws them according to its training configuration.
            Passing the same workloads to several ``generate`` calls is how the
            adaptive/alternative-strategy machinery re-uses one training corpus.
        """
        start_time = time.perf_counter()
        if workloads is None:
            workloads = training_workloads(self._templates, self._config)
        else:
            workloads = list(workloads)
        if not workloads:
            raise TrainingError("training requires at least one sample workload")

        training_set = TrainingSet(self._extractor.feature_names)
        samples: list[SampleSolution] = []
        skipped = 0
        search_start = time.perf_counter()
        for workload in workloads:
            problem = SchedulingProblem.for_workload(
                workload, self._vm_types, goal, self._latency_model
            )
            try:
                examples, result = collect_examples(
                    problem, self._extractor, max_expansions=self._config.max_expansions
                )
            except SearchBudgetExceeded:
                skipped += 1
                continue
            training_set.extend(examples)
            samples.append(
                SampleSolution(
                    template_counts=dict(workload.template_counts()),
                    optimal_cost=result.cost,
                    expansions=result.expansions,
                )
            )
        search_time = time.perf_counter() - search_start

        if not len(training_set):
            raise TrainingError(
                "no training examples were collected; every sample exceeded the "
                "search budget — relax the goal or increase max_expansions"
            )

        fit_start = time.perf_counter()
        tree = self._fit_tree(training_set)
        fit_time = time.perf_counter() - fit_start
        training_time = time.perf_counter() - start_time

        metadata = ModelMetadata(
            goal_kind=goal.kind,
            num_training_samples=len(samples),
            num_training_examples=len(training_set),
            training_time_seconds=training_time,
            tree_depth=tree.depth(),
            tree_leaves=tree.leaf_count(),
        )
        model = DecisionModel(
            tree=tree,
            extractor=self._extractor,
            templates=self._templates,
            vm_types=self._vm_types,
            goal=goal,
            latency_model=self._latency_model,
            metadata=metadata,
        )
        return TrainingResult(
            model=model,
            training_set=training_set,
            samples=samples,
            goal=goal,
            config=self._config,
            training_time=training_time,
            search_time=search_time,
            fit_time=fit_time,
            skipped_samples=skipped,
            workloads=list(workloads),
        )

    def fit_from_training_set(
        self, goal: PerformanceGoal, training_set: TrainingSet
    ) -> DecisionModel:
        """Fit a model directly from an existing training set (used by ablations)."""
        tree = self._fit_tree(training_set)
        metadata = ModelMetadata(
            goal_kind=goal.kind,
            num_training_examples=len(training_set),
            tree_depth=tree.depth(),
            tree_leaves=tree.leaf_count(),
        )
        return DecisionModel(
            tree=tree,
            extractor=self._extractor,
            templates=self._templates,
            vm_types=self._vm_types,
            goal=goal,
            latency_model=self._latency_model,
            metadata=metadata,
        )

    def _fit_tree(self, training_set: TrainingSet) -> DecisionTreeClassifier:
        matrix, labels = training_set.to_matrix()
        tree = DecisionTreeClassifier(
            max_depth=self._config.max_depth,
            min_samples_leaf=self._config.min_samples_leaf,
        )
        feature_names = training_set.feature_names
        return tree.fit(matrix, labels, feature_names)
