"""The model-generation pipeline of Figure 4.

Given a workload specification (templates + VM catalogue) and a performance
goal, :class:`ModelGenerator` executes the paper's offline training loop:

1. draw ``N`` random sample workloads of ``m`` queries (Section 4.2);
2. find the minimum-cost schedule of each sample with A* over the scheduling
   graph (Section 4.3);
3. convert every decision on every optimal path into a labelled training
   example (Section 4.4);
4. fit a C4.5-style decision tree on the combined training set (Section 4.5).

The returned :class:`TrainingResult` keeps the training set and the per-sample
solutions so that the adaptive-modeling machinery (Section 5) can re-derive
models for stricter goals without re-generating workloads or re-searching from
scratch.

Parallel training
-----------------

The per-sample A* solves are embarrassingly parallel (each sample's scheduling
graph is independent), so step 2 fans out through an
:class:`~repro.parallel.backend.ExecutionBackend` when
:attr:`~repro.config.TrainingConfig.n_jobs` is not 1.  The backend is *shared
and persistent*: a generator (or a whole
:class:`~repro.service.service.WiSeDBService`) holds one warm
:class:`~repro.parallel.backend.ProcessPoolBackend` and reuses it across
``generate``/``retrain`` calls, so repeated trainings no longer pay per-call
pool start-up.  The driver reassembles results **in sample order**, so the
training set, the fitted tree, and every downstream artefact are bit-identical
for any ``n_jobs`` value and any backend (asserted by the determinism tests).
Environments where process pools are unavailable fall back to the sequential
path transparently.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cloud.latency import LatencyModel, TemplateLatencyModel
from repro.cloud.vm import VMTypeCatalog, single_vm_type_catalog
from repro.config import TrainingConfig, slow_path_enabled
from repro.exceptions import SearchBudgetExceeded, TrainingError
from repro.learning.dataset import TrainingExample, TrainingSet, examples_from_matrix
from repro.learning.decision_tree import DecisionTreeClassifier
from repro.learning.features import FEATURE_FAMILIES, FeatureExtractor
from repro.learning.model import DecisionModel, ModelMetadata
from repro.learning.sampling import training_workloads
from repro.parallel.backend import ExecutionBackend, backend_for
from repro.search.astar import SearchResult, astar_search, optimality_ratio
from repro.search.problem import SchedulingProblem, SearchNode
from repro.search.strategy import SearchStrategy, strategy_from_spec
from repro.sla.base import PerformanceGoal
from repro.workloads.templates import TemplateSet
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class SampleSolution:
    """The solution of one training sample (kept for adaptive reuse).

    ``optimal_cost`` is the achieved schedule cost; under the exact default
    strategy it is provably minimal.  Relaxed strategies additionally record
    ``cost_lower_bound`` — a sound lower bound on the true optimum — so the
    per-sample suboptimality is never silent (``None`` means exact).
    """

    template_counts: dict[str, int]
    optimal_cost: float
    expansions: int
    cost_lower_bound: float | None = None

    @property
    def optimality_ratio(self) -> float:
        """``cost / optimal-lower-bound`` (1.0 when the solve was exact)."""
        return optimality_ratio(self.optimal_cost, self.cost_lower_bound)

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        data = {
            "template_counts": dict(self.template_counts),
            "optimal_cost": self.optimal_cost,
            "expansions": self.expansions,
        }
        if self.cost_lower_bound is not None:
            data["cost_lower_bound"] = self.cost_lower_bound
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SampleSolution":
        """Rebuild a sample solution from :meth:`to_dict` output."""
        return cls(
            template_counts=dict(data["template_counts"]),
            optimal_cost=data["optimal_cost"],
            expansions=data["expansions"],
            cost_lower_bound=data.get("cost_lower_bound"),
        )


def worst_sample_optimality_ratio(samples: "Sequence[SampleSolution]") -> float:
    """Worst per-sample cost-vs-optimal ratio (1.0 when every solve was exact).

    The single definition behind :attr:`TrainingResult.worst_optimality_ratio`
    and the metadata stamp on fresh *and* adaptively retrained models, so the
    "relaxed strategies never degrade silently" contract has one source of
    truth.
    """
    return max((sample.optimality_ratio for sample in samples), default=1.0)


def stamp_optimality_ratio(metadata, samples: "Sequence[SampleSolution]") -> None:
    """Record a relaxed run's worst ratio in the model metadata (if any)."""
    worst = worst_sample_optimality_ratio(samples)
    if worst > 1.0:
        metadata.extra["worst_optimality_ratio"] = worst


@dataclass
class TrainingResult:
    """Everything produced by one training run."""

    model: DecisionModel
    training_set: TrainingSet
    samples: list[SampleSolution]
    goal: PerformanceGoal
    config: TrainingConfig
    training_time: float
    search_time: float
    fit_time: float
    skipped_samples: int = 0
    workloads: list[Workload] = field(default_factory=list)

    @property
    def num_examples(self) -> int:
        """Number of labelled decisions in the training set."""
        return len(self.training_set)

    @property
    def worst_optimality_ratio(self) -> float:
        """Worst per-sample cost-vs-optimal ratio (1.0 for exact strategies).

        Relaxed search strategies (weighted A*, beam) surface their quality
        loss here instead of silently training on degraded schedules.
        """
        return worst_sample_optimality_ratio(self.samples)

    # -- persistence -----------------------------------------------------------------

    def to_dict(self) -> dict:
        """Self-contained JSON-serializable representation of the training run.

        Besides the decision model itself, the sample workloads and their
        optimal costs are included so a restored result supports everything a
        fresh one does — in particular adaptive retraining
        (:class:`~repro.adaptive.retraining.AdaptiveModeler`) and the online
        scheduler's linear-shifting path, both of which re-search the stored
        samples.  Floats survive JSON exactly, so restored runs retrain and
        schedule bit-identically.
        """
        return {
            "format": "wisedb-training-result",
            "version": 1,
            "model": self.model.to_dict(),
            "training_set": self.training_set.to_dict(),
            "samples": [sample.to_dict() for sample in self.samples],
            "goal": self.goal.to_dict(),
            "config": self.config.to_dict(),
            "training_time": self.training_time,
            "search_time": self.search_time,
            "fit_time": self.fit_time,
            "skipped_samples": self.skipped_samples,
            "workloads": [workload.to_dict() for workload in self.workloads],
        }

    @classmethod
    def from_dict(cls, data: dict, n_jobs: int = 1) -> "TrainingResult":
        """Rebuild a training result from :meth:`to_dict` output.

        ``n_jobs`` seeds the restored configuration's worker count (it is not
        part of the serialized form because it never affects output).
        """
        if data.get("format") != "wisedb-training-result":
            raise TrainingError("not a serialized WiSeDB training result")
        model = DecisionModel.from_dict(data["model"])
        templates = model.templates
        return cls(
            model=model,
            training_set=TrainingSet.from_dict(data["training_set"]),
            samples=[SampleSolution.from_dict(entry) for entry in data["samples"]],
            goal=model.goal,
            config=TrainingConfig.from_dict(data["config"], n_jobs=n_jobs),
            training_time=data["training_time"],
            search_time=data["search_time"],
            fit_time=data["fit_time"],
            skipped_samples=data["skipped_samples"],
            workloads=[
                Workload.from_dict(entry, templates) for entry in data["workloads"]
            ],
        )


def collect_examples(
    problem: SchedulingProblem,
    extractor: FeatureExtractor,
    max_expansions: int | None = None,
    extra_lower_bound: Callable[[SearchNode], float] | None = None,
    strategy: SearchStrategy | None = None,
) -> tuple[list[TrainingExample], SearchResult]:
    """Solve *problem* and label every decision on the solution path.

    ``strategy`` selects the search strategy (``None`` = the exact A*
    default, bit-identical to every prior release).  Feature rows are
    assembled through the extractor's batch
    :meth:`~repro.learning.features.FeatureExtractor.matrix` fast path (one
    preallocated matrix for the whole solution path instead of one dict per
    vertex); ``REPRO_SLOW_PATH=1`` falls back to the legacy per-vertex dicts.
    Both paths produce bit-identical training sets.
    """
    if strategy is None:
        result = astar_search(
            problem, max_expansions=max_expansions, extra_lower_bound=extra_lower_bound
        )
    else:
        result = strategy.search(
            problem, max_expansions=max_expansions, extra_lower_bound=extra_lower_bound
        )
    decisions = list(result.decisions())
    if slow_path_enabled():
        examples = [
            TrainingExample(features=extractor.extract(node, problem), label=action.label)
            for node, action in decisions
        ]
    else:
        matrix = extractor.matrix([node for node, _ in decisions], problem)
        examples = examples_from_matrix(
            extractor.feature_names,
            matrix,
            [action.label for _, action in decisions],
        )
    return examples, result


class SampleSolver:
    """Solves one training sample: everything a worker process needs, pickled once.

    Instances are the worker callable an
    :class:`~repro.parallel.backend.ExecutionBackend` ships to its processes;
    the specification — VM catalogue, goal, latency model, feature extractor —
    is pickled once per ``map_tasks`` call rather than once per task.
    ``extra_bound`` optionally carries a picklable admissible-bound callable
    (the adaptive-A* hook of Section 5); when the bound advertises an
    ``aux_goal`` (the old goal whose penalty it re-evaluates), the solver
    builds the problem with that auxiliary goal so search nodes carry a second
    incremental accumulator and the bound becomes an O(1)-O(log n) delta.
    """

    def __init__(
        self,
        vm_types: VMTypeCatalog,
        goal: PerformanceGoal,
        latency_model: LatencyModel,
        extractor: FeatureExtractor,
        max_expansions: int | None,
        search_strategy: str = "astar",
        future_bound: str = "memoized",
    ) -> None:
        self.vm_types = vm_types
        self.goal = goal
        self.latency_model = latency_model
        self.extractor = extractor
        self.max_expansions = max_expansions
        #: Strategy / future-cost-bound specs (plain strings so the solver
        #: pickles cheaply; resolved lazily per process).
        self.search_strategy = search_strategy
        self.future_bound = future_bound
        self._strategy: SearchStrategy | None = None

    def _resolved_strategy(self) -> SearchStrategy | None:
        """The strategy instance, or ``None`` for the zero-overhead default."""
        if self.search_strategy == "astar":
            return None
        if self._strategy is None:
            self._strategy = strategy_from_spec(self.search_strategy)
        return self._strategy

    def solve(
        self,
        workload: Workload,
        extra_bound: Callable[[SearchNode], float] | None = None,
    ) -> tuple[list[TrainingExample], SampleSolution] | None:
        """Examples and solution for one sample (None = budget exceeded)."""
        aux_goal = None
        if extra_bound is not None and not slow_path_enabled():
            # Adaptive-A* bounds advertise the old goal so its penalty can be
            # carried incrementally on search nodes (REPRO_SLOW_PATH=1 keeps
            # the legacy full re-evaluation as an escape hatch).
            aux_goal = getattr(extra_bound, "aux_goal", None)
        problem = SchedulingProblem.for_workload(
            workload,
            self.vm_types,
            self.goal,
            self.latency_model,
            aux_goal=aux_goal,
            future_bound=self.future_bound,
        )
        try:
            examples, result = collect_examples(
                problem,
                self.extractor,
                max_expansions=self.max_expansions,
                extra_lower_bound=extra_bound,
                strategy=self._resolved_strategy(),
            )
        except SearchBudgetExceeded:
            return None
        solution = SampleSolution(
            template_counts=dict(workload.template_counts()),
            optimal_cost=result.cost,
            expansions=result.expansions,
            cost_lower_bound=result.cost_lower_bound,
        )
        return examples, solution

    #: Worker-callable protocol of :meth:`ExecutionBackend.map_tasks`.
    __call__ = solve


def solve_samples(
    solver: SampleSolver,
    tasks: Sequence[tuple],
    n_jobs: int,
    backend: ExecutionBackend | None = None,
) -> list:
    """Solve ``(index, workload[, extra_bound])`` tasks, returning payloads in task order.

    Compatibility wrapper over :meth:`ExecutionBackend.map_tasks`.  When a
    *backend* is supplied it is used as-is (and stays warm for the caller to
    reuse); otherwise a transient backend sized by ``n_jobs`` is created and
    closed around the call, which preserves the historical per-call pool
    behaviour.  Either way the returned list is ordered by task index
    regardless of completion order, so callers observe bit-identical results
    for every ``n_jobs`` and every backend.
    """
    if backend is not None:
        return backend.map_tasks(solver, tasks)
    with backend_for(n_jobs) as transient:
        return transient.map_tasks(solver, tasks)


class ModelGenerator:
    """Trains WiSeDB decision models for a fixed workload specification.

    ``backend`` optionally injects a shared
    :class:`~repro.parallel.backend.ExecutionBackend` (e.g. one warm process
    pool serving every tenant of a service); when omitted, the generator
    lazily creates — and owns — the backend its configuration's ``n_jobs``
    implies, keeping it warm across repeated :meth:`generate` calls.  Owned
    backends are released by :meth:`close` (the generator is also a context
    manager); injected backends belong to the caller.
    """

    def __init__(
        self,
        templates: TemplateSet,
        vm_types: VMTypeCatalog | None = None,
        latency_model: LatencyModel | None = None,
        config: TrainingConfig | None = None,
        feature_families: tuple[str, ...] = FEATURE_FAMILIES,
        backend: ExecutionBackend | None = None,
    ) -> None:
        self._templates = templates
        self._vm_types = vm_types or single_vm_type_catalog()
        self._latency_model = latency_model or TemplateLatencyModel(templates)
        self._config = config or TrainingConfig.fast()
        self._extractor = FeatureExtractor(templates, self._vm_types, feature_families)
        self._backend = backend
        self._owns_backend = False

    # -- accessors -----------------------------------------------------------------

    @property
    def templates(self) -> TemplateSet:
        """The workload specification models are trained for."""
        return self._templates

    @property
    def vm_types(self) -> VMTypeCatalog:
        """The VM catalogue models may provision from."""
        return self._vm_types

    @property
    def latency_model(self) -> LatencyModel:
        """The latency estimates used to cost schedules during training."""
        return self._latency_model

    @property
    def config(self) -> TrainingConfig:
        """The training configuration (sample counts, tree regularisation)."""
        return self._config

    @property
    def extractor(self) -> FeatureExtractor:
        """The feature extractor shared by training and runtime."""
        return self._extractor

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend sample solves fan out through.

        Created lazily from the configuration's ``n_jobs`` when none was
        injected, and then kept warm for every later call.  If an injected
        backend has been closed by its owner (a service that shut down while
        this generator is still referenced by a scheduler or modeler), the
        generator heals by replacing it with an owned one instead of failing
        every later training call.
        """
        backend = self._backend
        if backend is not None and getattr(backend, "closed", False):
            backend = None
        if backend is None:
            backend = self._config.create_backend()
            self._backend = backend
            self._owns_backend = True
        return backend

    def close(self) -> None:
        """Release the generator's owned backend (idempotent).

        Injected backends are the caller's responsibility and stay open.
        """
        if self._owns_backend and self._backend is not None:
            self._backend.close()
            self._backend = None
            self._owns_backend = False

    def __enter__(self) -> "ModelGenerator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- training -------------------------------------------------------------------

    def generate(
        self,
        goal: PerformanceGoal,
        workloads: Sequence[Workload] | None = None,
    ) -> TrainingResult:
        """Train a decision model for *goal*.

        Parameters
        ----------
        goal:
            The performance goal the model should optimise for.
        workloads:
            Optional pre-generated sample workloads.  When omitted, the
            generator draws them according to its training configuration.
            Passing the same workloads to several ``generate`` calls is how the
            adaptive/alternative-strategy machinery re-uses one training corpus.
        """
        start_time = time.perf_counter()
        if workloads is None:
            workloads = training_workloads(self._templates, self._config)
        else:
            workloads = list(workloads)
        if not workloads:
            raise TrainingError("training requires at least one sample workload")

        training_set = TrainingSet(self._extractor.feature_names)
        samples: list[SampleSolution] = []
        skipped = 0
        search_start = time.perf_counter()
        solver = SampleSolver(
            vm_types=self._vm_types,
            goal=goal,
            latency_model=self._latency_model,
            extractor=self._extractor,
            max_expansions=self._config.max_expansions,
            search_strategy=self._config.search_strategy,
            future_bound=self._config.future_bound,
        )
        payloads = self.backend.map_tasks(
            solver,
            [(index, workload) for index, workload in enumerate(workloads)],
        )
        # Merge in sample order: training output is identical for any n_jobs.
        for payload in payloads:
            if payload is None:
                skipped += 1
                continue
            examples, solution = payload
            training_set.extend(examples)
            samples.append(solution)
        search_time = time.perf_counter() - search_start

        if not len(training_set):
            raise TrainingError(
                "no training examples were collected; every sample exceeded the "
                "search budget — relax the goal or increase max_expansions"
            )

        fit_start = time.perf_counter()
        tree = self._fit_tree(training_set)
        fit_time = time.perf_counter() - fit_start
        training_time = time.perf_counter() - start_time

        metadata = ModelMetadata(
            goal_kind=goal.kind,
            num_training_samples=len(samples),
            num_training_examples=len(training_set),
            training_time_seconds=training_time,
            tree_depth=tree.depth(),
            tree_leaves=tree.leaf_count(),
            search_strategy=self._config.search_strategy,
            future_bound=self._config.future_bound,
        )
        # Relaxed strategies report their quality loss with the model.
        stamp_optimality_ratio(metadata, samples)
        model = DecisionModel(
            tree=tree,
            extractor=self._extractor,
            templates=self._templates,
            vm_types=self._vm_types,
            goal=goal,
            latency_model=self._latency_model,
            metadata=metadata,
        )
        return TrainingResult(
            model=model,
            training_set=training_set,
            samples=samples,
            goal=goal,
            config=self._config,
            training_time=training_time,
            search_time=search_time,
            fit_time=fit_time,
            skipped_samples=skipped,
            workloads=list(workloads),
        )

    def fit_from_training_set(
        self, goal: PerformanceGoal, training_set: TrainingSet
    ) -> DecisionModel:
        """Fit a model directly from an existing training set (used by ablations)."""
        tree = self._fit_tree(training_set)
        metadata = ModelMetadata(
            goal_kind=goal.kind,
            num_training_examples=len(training_set),
            tree_depth=tree.depth(),
            tree_leaves=tree.leaf_count(),
            search_strategy=self._config.search_strategy,
            future_bound=self._config.future_bound,
        )
        return DecisionModel(
            tree=tree,
            extractor=self._extractor,
            templates=self._templates,
            vm_types=self._vm_types,
            goal=goal,
            latency_model=self._latency_model,
            metadata=metadata,
        )

    def _fit_tree(self, training_set: TrainingSet) -> DecisionTreeClassifier:
        matrix, labels = training_set.to_matrix()
        tree = DecisionTreeClassifier(
            max_depth=self._config.max_depth,
            min_samples_leaf=self._config.min_samples_leaf,
        )
        feature_names = training_set.feature_names
        # Presorted fitting is bit-identical to the per-node-argsort path
        # (shared split scoring); REPRO_SLOW_PATH=1 keeps the legacy path as
        # the reference, mirroring the inference escape hatch.
        return tree.fit(
            matrix, labels, feature_names, presort=not slow_path_enabled()
        )
