"""The model-generation pipeline of Figure 4.

Given a workload specification (templates + VM catalogue) and a performance
goal, :class:`ModelGenerator` executes the paper's offline training loop:

1. draw ``N`` random sample workloads of ``m`` queries (Section 4.2);
2. find the minimum-cost schedule of each sample with A* over the scheduling
   graph (Section 4.3);
3. convert every decision on every optimal path into a labelled training
   example (Section 4.4);
4. fit a C4.5-style decision tree on the combined training set (Section 4.5).

The returned :class:`TrainingResult` keeps the training set and the per-sample
solutions so that the adaptive-modeling machinery (Section 5) can re-derive
models for stricter goals without re-generating workloads or re-searching from
scratch.

Parallel training
-----------------

The per-sample A* solves are embarrassingly parallel (each sample's scheduling
graph is independent), so step 2 fans out across worker processes when
:attr:`~repro.config.TrainingConfig.n_jobs` is not 1.  Each worker receives the
full specification once (via the pool initializer) and solves ``(index,
workload)`` tasks; the driver reassembles results **in sample order**, so the
training set, the fitted tree, and every downstream artefact are bit-identical
for any ``n_jobs`` value (asserted by the determinism tests).  Environments
where process pools are unavailable fall back to the sequential path
transparently.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cloud.latency import LatencyModel, TemplateLatencyModel
from repro.cloud.vm import VMTypeCatalog, single_vm_type_catalog
from repro.config import TrainingConfig, slow_path_enabled
from repro.exceptions import SearchBudgetExceeded, TrainingError
from repro.learning.dataset import TrainingExample, TrainingSet, examples_from_matrix
from repro.learning.decision_tree import DecisionTreeClassifier
from repro.learning.features import FEATURE_FAMILIES, FeatureExtractor
from repro.learning.model import DecisionModel, ModelMetadata
from repro.learning.sampling import training_workloads
from repro.search.astar import SearchResult, astar_search
from repro.search.problem import SchedulingProblem, SearchNode
from repro.sla.base import PerformanceGoal
from repro.workloads.templates import TemplateSet
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class SampleSolution:
    """The optimal solution of one training sample (kept for adaptive reuse)."""

    template_counts: dict[str, int]
    optimal_cost: float
    expansions: int

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "template_counts": dict(self.template_counts),
            "optimal_cost": self.optimal_cost,
            "expansions": self.expansions,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SampleSolution":
        """Rebuild a sample solution from :meth:`to_dict` output."""
        return cls(
            template_counts=dict(data["template_counts"]),
            optimal_cost=data["optimal_cost"],
            expansions=data["expansions"],
        )


@dataclass
class TrainingResult:
    """Everything produced by one training run."""

    model: DecisionModel
    training_set: TrainingSet
    samples: list[SampleSolution]
    goal: PerformanceGoal
    config: TrainingConfig
    training_time: float
    search_time: float
    fit_time: float
    skipped_samples: int = 0
    workloads: list[Workload] = field(default_factory=list)

    @property
    def num_examples(self) -> int:
        """Number of labelled decisions in the training set."""
        return len(self.training_set)

    # -- persistence -----------------------------------------------------------------

    def to_dict(self) -> dict:
        """Self-contained JSON-serializable representation of the training run.

        Besides the decision model itself, the sample workloads and their
        optimal costs are included so a restored result supports everything a
        fresh one does — in particular adaptive retraining
        (:class:`~repro.adaptive.retraining.AdaptiveModeler`) and the online
        scheduler's linear-shifting path, both of which re-search the stored
        samples.  Floats survive JSON exactly, so restored runs retrain and
        schedule bit-identically.
        """
        return {
            "format": "wisedb-training-result",
            "version": 1,
            "model": self.model.to_dict(),
            "training_set": self.training_set.to_dict(),
            "samples": [sample.to_dict() for sample in self.samples],
            "goal": self.goal.to_dict(),
            "config": self.config.to_dict(),
            "training_time": self.training_time,
            "search_time": self.search_time,
            "fit_time": self.fit_time,
            "skipped_samples": self.skipped_samples,
            "workloads": [workload.to_dict() for workload in self.workloads],
        }

    @classmethod
    def from_dict(cls, data: dict, n_jobs: int = 1) -> "TrainingResult":
        """Rebuild a training result from :meth:`to_dict` output.

        ``n_jobs`` seeds the restored configuration's worker count (it is not
        part of the serialized form because it never affects output).
        """
        if data.get("format") != "wisedb-training-result":
            raise TrainingError("not a serialized WiSeDB training result")
        model = DecisionModel.from_dict(data["model"])
        templates = model.templates
        return cls(
            model=model,
            training_set=TrainingSet.from_dict(data["training_set"]),
            samples=[SampleSolution.from_dict(entry) for entry in data["samples"]],
            goal=model.goal,
            config=TrainingConfig.from_dict(data["config"], n_jobs=n_jobs),
            training_time=data["training_time"],
            search_time=data["search_time"],
            fit_time=data["fit_time"],
            skipped_samples=data["skipped_samples"],
            workloads=[
                Workload.from_dict(entry, templates) for entry in data["workloads"]
            ],
        )


def collect_examples(
    problem: SchedulingProblem,
    extractor: FeatureExtractor,
    max_expansions: int | None = None,
    extra_lower_bound: Callable[[SearchNode], float] | None = None,
) -> tuple[list[TrainingExample], SearchResult]:
    """Solve *problem* optimally and label every decision on the optimal path.

    Feature rows are assembled through the extractor's batch
    :meth:`~repro.learning.features.FeatureExtractor.matrix` fast path (one
    preallocated matrix for the whole optimal path instead of one dict per
    vertex); ``REPRO_SLOW_PATH=1`` falls back to the legacy per-vertex dicts.
    Both paths produce bit-identical training sets.
    """
    result = astar_search(
        problem, max_expansions=max_expansions, extra_lower_bound=extra_lower_bound
    )
    decisions = list(result.decisions())
    if slow_path_enabled():
        examples = [
            TrainingExample(features=extractor.extract(node, problem), label=action.label)
            for node, action in decisions
        ]
    else:
        matrix = extractor.matrix([node for node, _ in decisions], problem)
        examples = examples_from_matrix(
            extractor.feature_names,
            matrix,
            [action.label for _, action in decisions],
        )
    return examples, result


class SampleSolver:
    """Solves one training sample: everything a worker process needs, pickled once.

    Instances are shipped to each pool worker through the initializer (not per
    task), so the specification — VM catalogue, goal, latency model, feature
    extractor — crosses the process boundary a single time.  ``extra_bound``
    optionally carries a picklable admissible-bound callable (the adaptive-A*
    hook of Section 5).
    """

    def __init__(
        self,
        vm_types: VMTypeCatalog,
        goal: PerformanceGoal,
        latency_model: LatencyModel,
        extractor: FeatureExtractor,
        max_expansions: int | None,
    ) -> None:
        self.vm_types = vm_types
        self.goal = goal
        self.latency_model = latency_model
        self.extractor = extractor
        self.max_expansions = max_expansions

    def solve(
        self,
        workload: Workload,
        extra_bound: Callable[[SearchNode], float] | None = None,
    ) -> tuple[list[TrainingExample], SampleSolution] | None:
        """Optimal examples and solution for one sample (None = budget exceeded)."""
        problem = SchedulingProblem.for_workload(
            workload, self.vm_types, self.goal, self.latency_model
        )
        try:
            examples, result = collect_examples(
                problem,
                self.extractor,
                max_expansions=self.max_expansions,
                extra_lower_bound=extra_bound,
            )
        except SearchBudgetExceeded:
            return None
        solution = SampleSolution(
            template_counts=dict(workload.template_counts()),
            optimal_cost=result.cost,
            expansions=result.expansions,
        )
        return examples, solution


#: Per-process solver installed by the pool initializer.
_WORKER_SOLVER: SampleSolver | None = None


def _init_worker(solver: SampleSolver) -> None:
    global _WORKER_SOLVER
    _WORKER_SOLVER = solver


def _solve_indexed(task):
    """Pool task: ``(index, workload[, extra_bound])`` → ``(index, payload)``."""
    index, workload = task[0], task[1]
    extra_bound = task[2] if len(task) > 2 else None
    assert _WORKER_SOLVER is not None  # installed by _init_worker
    return index, _WORKER_SOLVER.solve(workload, extra_bound)


def solve_samples(
    solver: SampleSolver,
    tasks: Sequence[tuple],
    n_jobs: int,
) -> list:
    """Solve ``(index, workload[, extra_bound])`` tasks, returning payloads in task order.

    Fans out across ``n_jobs`` worker processes when possible; any failure to
    set up multiprocessing (restricted environments, unpicklable custom
    components) degrades to the sequential path rather than erroring.  The
    returned list is ordered by task index regardless of completion order, so
    callers observe bit-identical results for every ``n_jobs``.
    """
    results: list = [None] * len(tasks)
    if n_jobs > 1 and len(tasks) > 1:
        import multiprocessing
        import pickle
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        try:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
            workers = min(n_jobs, len(tasks))
            chunksize = max(1, len(tasks) // (workers * 4))
            with ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(solver,),
            ) as pool:
                for index, payload in pool.map(
                    _solve_indexed, tasks, chunksize=chunksize
                ):
                    results[index] = payload
            return results
        except (  # pragma: no cover - depends on host capabilities
            OSError,
            pickle.PicklingError,
            # CPython raises TypeError (locks, sockets, most C objects) or
            # AttributeError (failed lookups) for many unpicklable values
            # rather than PicklingError.
            TypeError,
            AttributeError,
            BrokenProcessPool,
        ):
            # Pool setup / transport failures only (no fork, unpicklable
            # specification components, workers killed): degrade to the
            # sequential path.  Other deterministic errors raised by solve()
            # propagate — re-solving thousands of samples sequentially just to
            # rediscover them would silently burn the whole training budget.
            results = [None] * len(tasks)
    for task in tasks:
        index, workload = task[0], task[1]
        extra_bound = task[2] if len(task) > 2 else None
        results[index] = solver.solve(workload, extra_bound)
    return results


class ModelGenerator:
    """Trains WiSeDB decision models for a fixed workload specification."""

    def __init__(
        self,
        templates: TemplateSet,
        vm_types: VMTypeCatalog | None = None,
        latency_model: LatencyModel | None = None,
        config: TrainingConfig | None = None,
        feature_families: tuple[str, ...] = FEATURE_FAMILIES,
    ) -> None:
        self._templates = templates
        self._vm_types = vm_types or single_vm_type_catalog()
        self._latency_model = latency_model or TemplateLatencyModel(templates)
        self._config = config or TrainingConfig.fast()
        self._extractor = FeatureExtractor(templates, self._vm_types, feature_families)

    # -- accessors -----------------------------------------------------------------

    @property
    def templates(self) -> TemplateSet:
        """The workload specification models are trained for."""
        return self._templates

    @property
    def vm_types(self) -> VMTypeCatalog:
        """The VM catalogue models may provision from."""
        return self._vm_types

    @property
    def latency_model(self) -> LatencyModel:
        """The latency estimates used to cost schedules during training."""
        return self._latency_model

    @property
    def config(self) -> TrainingConfig:
        """The training configuration (sample counts, tree regularisation)."""
        return self._config

    @property
    def extractor(self) -> FeatureExtractor:
        """The feature extractor shared by training and runtime."""
        return self._extractor

    # -- training -------------------------------------------------------------------

    def generate(
        self,
        goal: PerformanceGoal,
        workloads: Sequence[Workload] | None = None,
    ) -> TrainingResult:
        """Train a decision model for *goal*.

        Parameters
        ----------
        goal:
            The performance goal the model should optimise for.
        workloads:
            Optional pre-generated sample workloads.  When omitted, the
            generator draws them according to its training configuration.
            Passing the same workloads to several ``generate`` calls is how the
            adaptive/alternative-strategy machinery re-uses one training corpus.
        """
        start_time = time.perf_counter()
        if workloads is None:
            workloads = training_workloads(self._templates, self._config)
        else:
            workloads = list(workloads)
        if not workloads:
            raise TrainingError("training requires at least one sample workload")

        training_set = TrainingSet(self._extractor.feature_names)
        samples: list[SampleSolution] = []
        skipped = 0
        search_start = time.perf_counter()
        solver = SampleSolver(
            vm_types=self._vm_types,
            goal=goal,
            latency_model=self._latency_model,
            extractor=self._extractor,
            max_expansions=self._config.max_expansions,
        )
        payloads = solve_samples(
            solver,
            [(index, workload) for index, workload in enumerate(workloads)],
            self._config.effective_n_jobs(),
        )
        # Merge in sample order: training output is identical for any n_jobs.
        for payload in payloads:
            if payload is None:
                skipped += 1
                continue
            examples, solution = payload
            training_set.extend(examples)
            samples.append(solution)
        search_time = time.perf_counter() - search_start

        if not len(training_set):
            raise TrainingError(
                "no training examples were collected; every sample exceeded the "
                "search budget — relax the goal or increase max_expansions"
            )

        fit_start = time.perf_counter()
        tree = self._fit_tree(training_set)
        fit_time = time.perf_counter() - fit_start
        training_time = time.perf_counter() - start_time

        metadata = ModelMetadata(
            goal_kind=goal.kind,
            num_training_samples=len(samples),
            num_training_examples=len(training_set),
            training_time_seconds=training_time,
            tree_depth=tree.depth(),
            tree_leaves=tree.leaf_count(),
        )
        model = DecisionModel(
            tree=tree,
            extractor=self._extractor,
            templates=self._templates,
            vm_types=self._vm_types,
            goal=goal,
            latency_model=self._latency_model,
            metadata=metadata,
        )
        return TrainingResult(
            model=model,
            training_set=training_set,
            samples=samples,
            goal=goal,
            config=self._config,
            training_time=training_time,
            search_time=search_time,
            fit_time=fit_time,
            skipped_samples=skipped,
            workloads=list(workloads),
        )

    def fit_from_training_set(
        self, goal: PerformanceGoal, training_set: TrainingSet
    ) -> DecisionModel:
        """Fit a model directly from an existing training set (used by ablations)."""
        tree = self._fit_tree(training_set)
        metadata = ModelMetadata(
            goal_kind=goal.kind,
            num_training_examples=len(training_set),
            tree_depth=tree.depth(),
            tree_leaves=tree.leaf_count(),
        )
        return DecisionModel(
            tree=tree,
            extractor=self._extractor,
            templates=self._templates,
            vm_types=self._vm_types,
            goal=goal,
            latency_model=self._latency_model,
            metadata=metadata,
        )

    def _fit_tree(self, training_set: TrainingSet) -> DecisionTreeClassifier:
        matrix, labels = training_set.to_matrix()
        tree = DecisionTreeClassifier(
            max_depth=self._config.max_depth,
            min_samples_leaf=self._config.min_samples_leaf,
        )
        feature_names = training_set.feature_names
        return tree.fit(matrix, labels, feature_names)
