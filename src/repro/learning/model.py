"""The workload-management decision model (Section 4.5).

A :class:`DecisionModel` wraps a fitted decision tree together with the
workload specification it was trained for (templates, VM types, performance
goal and latency model).  Parsing the model repeatedly over a scheduling state
yields a schedule: at each step the model chooses either to place a query of
some template on the most recently provisioned VM, or to provision a new VM.

The runtime scheduler re-uses the exact search machinery
(:class:`~repro.search.problem.SchedulingProblem` /
:class:`~repro.search.problem.SearchNode`) that training used, so the feature
values the model sees at runtime are computed by the same code that produced
its training set.

Because the decision tree is a statistical model, it can occasionally emit an
action that is invalid in the current state (e.g. "place a query of T3" when
no T3 instance remains).  The model applies the paper's common-sense fallbacks
— treat an unavailable template as the remaining template with the closest
latency, never stack two empty VMs — and records how often it had to do so.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.cloud.latency import (
    LatencyModel,
    latency_model_from_dict,
    latency_model_to_dict,
)
from repro.cloud.vm import VMType, VMTypeCatalog
from repro.config import slow_path_enabled
from repro.exceptions import ModelError
from repro.learning.decision_tree import DecisionTreeClassifier
from repro.learning.features import FeatureExtractor, cost_feature
from repro.search.actions import Action, PlaceQuery, ProvisionVM, action_from_label
from repro.search.problem import SchedulingProblem, SearchNode
from repro.sla.base import PerformanceGoal
from repro.workloads.templates import TemplateSet


@dataclass
class DecisionStats:
    """Counters describing how a model has been used since the last reset."""

    decisions: int = 0
    fallbacks: int = 0
    provision_decisions: int = 0
    placement_decisions: int = 0
    guard_activations: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.decisions = 0
        self.fallbacks = 0
        self.provision_decisions = 0
        self.placement_decisions = 0
        self.guard_activations = 0


@dataclass
class ModelMetadata:
    """Provenance of a trained model (used in reports and experiments)."""

    goal_kind: str
    num_training_samples: int = 0
    num_training_examples: int = 0
    training_time_seconds: float = 0.0
    tree_depth: int = 0
    tree_leaves: int = 0
    #: Search-strategy / future-cost-bound specs the training solves ran
    #: under (see :mod:`repro.search.strategy` / :mod:`repro.search.bounds`).
    search_strategy: str = "astar"
    future_bound: str = "memoized"
    extra: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "ModelMetadata":
        """Rebuild metadata from :meth:`to_dict` output."""
        return cls(**dict(data))


class DecisionModel:
    """A trained workload-management strategy."""

    def __init__(
        self,
        tree: DecisionTreeClassifier,
        extractor: FeatureExtractor,
        templates: TemplateSet,
        vm_types: VMTypeCatalog,
        goal: PerformanceGoal,
        latency_model: LatencyModel,
        metadata: ModelMetadata | None = None,
        penalty_guard: bool = True,
    ) -> None:
        self._tree = tree
        self._extractor = extractor
        self._templates = templates
        self._vm_types = vm_types
        self._goal = goal
        self._latency_model = latency_model
        self._metadata = metadata or ModelMetadata(goal_kind=goal.kind)
        self._penalty_guard = penalty_guard
        self.stats = DecisionStats()
        #: Lazily built compiled evaluator + reusable feature-row buffer for
        #: the vectorized inference fast path (see :meth:`decide`).  The row
        #: buffer is a plain list: scalar list stores beat numpy item
        #: assignment at WiSeDB's feature-vector sizes, and the compiled
        #: evaluator indexes either representation.
        self._evaluator = None
        self._row_buffer: list[float] | None = None
        #: raw tree label -> parsed Action (or None for unparseable labels).
        self._action_cache: dict[str, Action | None] = {}
        #: template name -> cheapest supporting VM type (catalogue and latency
        #: model are immutable, so the answer never changes per model).
        self._preferred_vm_cache: dict[str, VMType] = {}
        #: (vm type name, template name) -> execution cost (running cost x
        #: latency), memoized for the penalty guard's hot path.
        self._execution_cost_cache: dict[tuple[str, str], float] = {}
        #: vm type name -> per-template runtime tables (see :meth:`vm_tables`).
        self._vm_tables: dict[
            str,
            tuple[
                tuple[str, ...],
                list[bool],
                list[float],
                list[float],
                bool,
                dict[str, float],
            ],
        ] = {}
        #: template name -> cost-of-X column in the extractor's row layout
        #: (lets the guard reuse the Equation-2 cost already computed during
        #: feature extraction instead of re-deriving it per guarded placement).
        column_of = {name: index for index, name in enumerate(extractor.feature_names)}
        self._cost_column_of: dict[str, int] = {
            template: column_of[cost_feature(template)]
            for template in templates.names
            if cost_feature(template) in column_of
        }

    # -- accessors -------------------------------------------------------------

    @property
    def tree(self) -> DecisionTreeClassifier:
        """The underlying fitted decision tree."""
        return self._tree

    @property
    def extractor(self) -> FeatureExtractor:
        """The feature extractor used at training time (and reused at runtime)."""
        return self._extractor

    @property
    def templates(self) -> TemplateSet:
        """The workload specification the model was trained for."""
        return self._templates

    @property
    def vm_types(self) -> VMTypeCatalog:
        """The VM catalogue the model can provision from."""
        return self._vm_types

    @property
    def goal(self) -> PerformanceGoal:
        """The performance goal the model was trained for."""
        return self._goal

    @property
    def latency_model(self) -> LatencyModel:
        """Latency estimates used when the model costs candidate placements."""
        return self._latency_model

    @property
    def metadata(self) -> ModelMetadata:
        """Training provenance information."""
        return self._metadata

    @property
    def search_strategy(self) -> str:
        """Spec of the search strategy the model was trained under."""
        return self._metadata.search_strategy

    @property
    def training_optimality_ratio(self) -> float:
        """Worst cost-vs-optimal ratio of the training solves (1.0 = exact).

        Models trained under a relaxed strategy (weighted A*, beam) carry the
        ratio in their metadata so downstream schedulers — and anyone reading
        a persisted artifact — can see how far the training schedules may sit
        above the optimum instead of the degradation being silent.
        """
        return float(self._metadata.extra.get("worst_optimality_ratio", 1.0))

    @property
    def penalty_guard_enabled(self) -> bool:
        """Whether the runtime penalty guard is active (see :meth:`with_penalty_guard`)."""
        return self._penalty_guard

    def with_penalty_guard(self, enabled: bool) -> "DecisionModel":
        """A copy of this model with the runtime penalty guard toggled.

        The guard is a small cost-aware safety net on top of the learned tree:
        when the tree asks for a placement whose marginal penalty already
        exceeds the price of renting a fresh VM (and renting one is legal), the
        scheduler provisions instead.  Our training corpora are orders of
        magnitude smaller than the paper's (pure-Python A* vs. their Java
        implementation), so rarely-visited feature-space regions are covered by
        only a handful of examples; the guard keeps those sparse regions from
        producing runaway penalties.  The ablation benchmark
        ``bench_ablation_penalty_guard`` quantifies its effect.
        """
        return DecisionModel(
            tree=self._tree,
            extractor=self._extractor,
            templates=self._templates,
            vm_types=self._vm_types,
            goal=self._goal,
            latency_model=self._latency_model,
            metadata=self._metadata,
            penalty_guard=enabled,
        )

    def describe(self) -> str:
        """One-line description of the model."""
        return (
            f"DecisionModel({self._goal.describe()}, "
            f"{len(self._templates)} templates, {len(self._vm_types)} VM types, "
            f"tree depth {self._metadata.tree_depth})"
        )

    # -- persistence -------------------------------------------------------------

    def to_dict(self) -> dict:
        """Self-contained JSON-serializable representation of the model.

        Everything the model needs at runtime is embedded — the fitted tree,
        the workload specification (templates and VM catalogue), the goal, the
        latency estimates, and the feature configuration — so
        :meth:`from_dict` restores a model whose schedules and costs are
        bit-identical to the original's.
        """
        return {
            "format": "wisedb-decision-model",
            "version": 1,
            "templates": self._templates.to_dict(),
            "vm_types": self._vm_types.to_dict(),
            "goal": self._goal.to_dict(),
            "latency_model": latency_model_to_dict(
                self._latency_model, self._templates, self._vm_types
            ),
            "feature_families": list(self._extractor.families),
            "tree": self._tree.to_dict(),
            "metadata": self._metadata.to_dict(),
            "penalty_guard": self._penalty_guard,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "DecisionModel":
        """Rebuild a model from :meth:`to_dict` output."""
        from repro.sla.factory import goal_from_dict

        if data.get("format") != "wisedb-decision-model":
            raise ModelError("not a serialized WiSeDB decision model")
        templates = TemplateSet.from_dict(data["templates"])
        vm_types = VMTypeCatalog.from_dict(data["vm_types"])
        extractor = FeatureExtractor(
            templates, vm_types, tuple(data["feature_families"])
        )
        return cls(
            tree=DecisionTreeClassifier.from_dict(data["tree"]),
            extractor=extractor,
            templates=templates,
            vm_types=vm_types,
            goal=goal_from_dict(data["goal"]),
            latency_model=latency_model_from_dict(data["latency_model"], templates),
            metadata=ModelMetadata.from_dict(data["metadata"]),
            penalty_guard=data.get("penalty_guard", True),
        )

    def save(self, path: str | Path) -> Path:
        """Write the model to *path* as JSON (parent directories are created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict()), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "DecisionModel":
        """Read a model previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    # -- raw prediction ----------------------------------------------------------

    def predict_label(self, features: Mapping[str, float]) -> str:
        """The raw decision-tree label for a feature mapping."""
        return self._tree.predict(features)

    def _compiled_evaluator(self):
        """The fitted tree compiled onto the extractor's feature-row layout."""
        if self._evaluator is None:
            self._evaluator = self._tree.compiled(self._extractor.feature_names)
        return self._evaluator

    def compiled_evaluator(self):
        """The compiled flat-array evaluator behind the inference fast path.

        Public so the sharded serving layer can pack the evaluator's arrays
        into shared memory (:mod:`repro.learning.shm`) and ship them to
        worker processes zero-copy.
        """
        return self._compiled_evaluator()

    def use_evaluator(self, evaluator) -> None:
        """Adopt a pre-built evaluator for the inference fast path.

        Sharded serving workers attach the parent's compiled evaluator from
        shared memory and install it here, so per-dispatch predictions read
        the shared arrays instead of a per-worker copy of the tree.  The
        evaluator must have been compiled onto this model's extractor row
        layout; a mismatched feature order would silently misread rows, so it
        is refused up front.
        """
        if tuple(evaluator.feature_names) != tuple(self._extractor.feature_names):
            raise ModelError(
                "evaluator feature order does not match the model's extractor "
                f"({len(evaluator.feature_names)} vs "
                f"{len(self._extractor.feature_names)} features)"
            )
        self._evaluator = evaluator

    def _inference_row(self) -> list[float]:
        """The model's reusable (single-threaded) feature-row buffer."""
        row = self._row_buffer
        if row is None:
            row = [0.0] * len(self._extractor.feature_names)
            self._row_buffer = row
        return row

    def predict_row(self, row: np.ndarray) -> str:
        """The raw label for one feature row in the extractor's column order."""
        return self._compiled_evaluator().predict_row(row)

    def predict_matrix(self, matrix: np.ndarray) -> list[str]:
        """Raw labels for a feature matrix in the extractor's column order."""
        return self._compiled_evaluator().predict_matrix(matrix)

    # -- validated decisions --------------------------------------------------------

    def decide(
        self,
        node: SearchNode,
        problem: SchedulingProblem,
        slow_path: bool | None = None,
    ) -> Action:
        """The model's (validated) action for the scheduling state *node*.

        The decision itself runs on the vectorized fast path — the feature
        vector is written into a preallocated row and classified by the
        compiled tree evaluator — unless ``REPRO_SLOW_PATH=1`` forces the
        legacy dict-extraction / node-walk path.  Both paths produce identical
        labels (asserted by the golden-scenario and equivalence suites).
        *slow_path* lets a scheduler resolve the environment check once per
        run instead of once per decision; ``None`` consults the environment.
        """
        if slow_path is None:
            slow_path = slow_path_enabled()
        if slow_path:
            features = self._extractor.extract(node, problem)
            raw_label = self._tree.predict(features)
            row = None
        else:
            row = self._extractor.extract_into(node, problem, self._inference_row())
            raw_label = self._compiled_evaluator().predict_row(row)
        try:
            action = self._action_cache[raw_label]
        except KeyError:
            try:
                action = action_from_label(raw_label)
            except ValueError:
                action = None
            self._action_cache[raw_label] = action
        validated = self._validate(action, node, problem, row)
        self.stats.decisions += 1
        if action is None or validated != action:
            self.stats.fallbacks += 1
        if isinstance(validated, ProvisionVM):
            self.stats.provision_decisions += 1
        else:
            self.stats.placement_decisions += 1
        return validated

    # -- validation and fallbacks -----------------------------------------------------

    def _validate(
        self,
        action: Action | None,
        node: SearchNode,
        problem: SchedulingProblem,
        row=None,
    ) -> Action:
        state = node.state
        if not state.remaining:
            raise ModelError("the model was asked to act on a complete schedule")
        last = state.last_vm()

        if isinstance(action, ProvisionVM):
            if last is None or last[1]:
                # Valid spot for a new VM; fix up unknown VM types.
                if action.vm_type_name in self._vm_types:
                    return action
                return ProvisionVM(self._vm_types.default.name)
            # The last VM is still empty: provisioning again would violate the
            # graph reduction and could loop forever, so place a query instead.
            return self._fallback_placement(node, problem)

        if isinstance(action, PlaceQuery):
            if last is None:
                return ProvisionVM(self._preferred_vm_type(action.template_name).name)
            vm_type = self._vm_types[last[0]]
            if state.has_remaining(action.template_name) and vm_type.supports(
                action.template_name
            ):
                return self._apply_penalty_guard(action, node, problem, row)
            fallback = self._fallback_placement(
                node, problem, preferred=action.template_name
            )
            if isinstance(fallback, PlaceQuery):
                return self._apply_penalty_guard(fallback, node, problem, row)
            return fallback

        # Unparseable label: place something sensible, or provision if we must.
        if last is None:
            return ProvisionVM(self._vm_types.default.name)
        return self._fallback_placement(node, problem)

    def vm_tables(
        self, vm_type_name: str, template_names: tuple[str, ...]
    ) -> tuple[
        tuple[str, ...],
        list[bool],
        list[float],
        list[float],
        bool,
        dict[str, float],
    ]:
        """Per-template runtime tables of one VM type, resolved once per model.

        ``(template names, supports flags, execution times, execution costs,
        all-supported flag, execution time by name)``.  The catalogue and
        latency model never change under a model, so the schedulers share
        these across scheduling runs — the online scheduler in particular
        stops re-deriving them for every arrival epoch's batch pass.
        """
        tables = self._vm_tables.get(vm_type_name)
        if tables is None or (
            tables[0] is not template_names and tables[0] != tuple(template_names)
        ):
            vm_type = self._vm_types[vm_type_name]
            supports: list[bool] = []
            execution_times: list[float] = []
            execution_costs: list[float] = []
            time_of: dict[str, float] = {}
            for name in template_names:
                if vm_type.supports(name):
                    execution_time = self._latency_model.latency(name, vm_type)
                    supports.append(True)
                    execution_times.append(execution_time)
                    execution_costs.append(vm_type.running_cost * execution_time)
                    time_of[name] = execution_time
                else:
                    supports.append(False)
                    execution_times.append(float("inf"))
                    execution_costs.append(float("inf"))
            tables = (
                tuple(template_names),
                supports,
                execution_times,
                execution_costs,
                all(supports),
                time_of,
            )
            self._vm_tables[vm_type_name] = tables
        return tables

    def _execution_cost(self, vm_type: VMType, template_name: str) -> float:
        """Memoized ``running_cost x latency`` of one placement."""
        key = (vm_type.name, template_name)
        cached = self._execution_cost_cache.get(key)
        if cached is None:
            cached = vm_type.running_cost * self._latency_model.latency(
                template_name, vm_type
            )
            self._execution_cost_cache[key] = cached
        return cached

    def _apply_penalty_guard(
        self,
        action: PlaceQuery,
        node: SearchNode,
        problem: SchedulingProblem,
        row=None,
    ) -> Action:
        """Swap a clearly loss-making placement for a provisioning action.

        When the marginal penalty of the requested placement already exceeds
        the start-up fee of a fresh VM able to run the query — and provisioning
        is legal at this vertex — renting the VM is always the cheaper move.
        The guard compensates for feature-space regions that the (scaled-down)
        training corpus covers only sparsely; it can be disabled via
        :meth:`with_penalty_guard` and is ablated in the benchmark suite.

        On the fast path *row* carries the feature vector just extracted, so
        the placement's Equation-2 cost is read back from its ``cost-of-X``
        column instead of being re-derived (the guard is only reached for
        feasible placements, whose cost is finite and therefore identical in
        the row and in :meth:`~repro.search.problem.SchedulingProblem.placement_edge_cost`).
        """
        if not self._penalty_guard:
            return action
        last = node.state.last_vm()
        if last is None or not last[1]:
            # Provisioning is not allowed on top of an empty VM; keep placing.
            return action
        vm_type = self._vm_types[last[0]]
        execution_cost = self._execution_cost(vm_type, action.template_name)
        cost_column = (
            self._cost_column_of.get(action.template_name) if row is not None else None
        )
        if cost_column is not None:
            edge_cost = row[cost_column]
        else:
            edge_cost = problem.placement_edge_cost(node, action.template_name)
        penalty_part = edge_cost - execution_cost
        replacement_vm = self._preferred_vm_type(action.template_name)
        if penalty_part > replacement_vm.startup_cost:
            self.stats.guard_activations += 1
            return ProvisionVM(replacement_vm.name)
        return action

    def _fallback_placement(
        self,
        node: SearchNode,
        problem: SchedulingProblem,
        preferred: str | None = None,
    ) -> Action:
        """Best substitute placement when the predicted action is unavailable."""
        state = node.state
        last = state.last_vm()
        assert last is not None
        vm_type = self._vm_types[last[0]]
        candidates = [
            name for name in state.remaining_templates() if vm_type.supports(name)
        ]
        if not candidates:
            # Nothing placeable on the current VM: provision one that can help.
            remaining = state.remaining_templates()
            return ProvisionVM(self._preferred_vm_type(remaining[0]).name)
        if preferred is not None and preferred in self._templates:
            target_latency = self._templates[preferred].base_latency
            chosen = min(
                candidates,
                key=lambda name: abs(self._templates[name].base_latency - target_latency),
            )
            return PlaceQuery(chosen)
        # Otherwise pick the candidate whose placement-edge cost is lowest.
        chosen = min(candidates, key=lambda name: problem.placement_edge_cost(node, name))
        return PlaceQuery(chosen)

    def _preferred_vm_type(self, template_name: str) -> VMType:
        """Cheapest VM type (by execution cost) able to process *template_name*.

        Memoized: the catalogue and latency model never change under a model,
        and the penalty guard asks this question once per guarded placement.
        """
        cached = self._preferred_vm_cache.get(template_name)
        if cached is not None:
            return cached
        supporting = self._vm_types.supporting(template_name)
        if not supporting:
            raise ModelError(
                f"no VM type in the catalogue supports template {template_name!r}"
            )
        preferred = min(
            supporting,
            key=lambda vm: vm.running_cost * self._latency_model.latency(template_name, vm),
        )
        self._preferred_vm_cache[template_name] = preferred
        return preferred
