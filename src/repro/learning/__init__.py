"""Supervised learning of workload-management strategies (Section 4)."""

from repro.learning.dataset import TrainingExample, TrainingSet
from repro.learning.decision_tree import DecisionTreeClassifier, TreeNode
from repro.learning.features import FEATURE_FAMILIES, FeatureExtractor, INFEASIBLE_COST
from repro.learning.model import DecisionModel, DecisionStats, ModelMetadata
from repro.learning.sampling import training_workloads, workload_counts
from repro.learning.trainer import (
    ModelGenerator,
    SampleSolution,
    TrainingResult,
    collect_examples,
)

__all__ = [
    "FEATURE_FAMILIES",
    "INFEASIBLE_COST",
    "DecisionModel",
    "DecisionStats",
    "DecisionTreeClassifier",
    "FeatureExtractor",
    "ModelGenerator",
    "ModelMetadata",
    "SampleSolution",
    "TrainingExample",
    "TrainingResult",
    "TrainingSet",
    "TreeNode",
    "collect_examples",
    "training_workloads",
    "workload_counts",
]
