"""Supervised learning of workload-management strategies (Section 4)."""

from repro.learning.dataset import TrainingExample, TrainingSet
from repro.learning.decision_tree import (
    CompiledTreeEvaluator,
    DecisionTreeClassifier,
    TreeNode,
)
from repro.learning.features import FEATURE_FAMILIES, FeatureExtractor, INFEASIBLE_COST
from repro.learning.model import DecisionModel, DecisionStats, ModelMetadata
from repro.learning.sampling import training_workloads, workload_counts
from repro.learning.shm import (
    SharedArrayBundle,
    SharedArrayView,
    attach_arrays,
    attach_evaluator,
    pack_arrays,
    pack_evaluator,
    shared_memory_available,
)
from repro.learning.trainer import (
    ModelGenerator,
    SampleSolution,
    TrainingResult,
    collect_examples,
)

__all__ = [
    "FEATURE_FAMILIES",
    "INFEASIBLE_COST",
    "CompiledTreeEvaluator",
    "DecisionModel",
    "DecisionStats",
    "DecisionTreeClassifier",
    "FeatureExtractor",
    "ModelGenerator",
    "ModelMetadata",
    "SampleSolution",
    "SharedArrayBundle",
    "SharedArrayView",
    "TrainingExample",
    "TrainingResult",
    "TrainingSet",
    "TreeNode",
    "attach_arrays",
    "attach_evaluator",
    "collect_examples",
    "pack_arrays",
    "pack_evaluator",
    "shared_memory_available",
    "training_workloads",
    "workload_counts",
]
