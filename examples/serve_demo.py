#!/usr/bin/env python3
"""Serving demo: a multi-tenant async front end under open-loop Poisson load.

This example runs the serving layer end to end:

1. register three tenants with different SLAs and train them (the shared
   registry path — second and third retrain adaptively where possible);
2. open a :class:`~repro.serving.ServingEngine` over the service: per-tenant
   admission queues, epoch batching, backpressure, degraded fallback;
3. drive it open loop with seeded Poisson arrival streams (one per tenant,
   deterministic per ``(seed, tenant)``) at a target offered rate;
4. print the metrics snapshot — per-tenant decision p50/p99, queue depths,
   admitted/shed/degraded counters, epochs, retrains — and the health status;
5. close the engine and price each tenant's served stream with the same
   unified outcome a direct ``OnlineScheduler.run`` would produce
   (bit-identically — that equivalence is CI-enforced).

Run with ``python examples/serve_demo.py``.  Pass ``--shards N`` to serve
the same streams through the multi-process
:class:`~repro.serving.ShardedServingEngine` instead: tenants are routed to
N forked shard workers by a deterministic hash of the tenant id, models
ship zero-copy through shared memory, and the priced outcomes are
bit-identical to the single-process run (when fork or shared memory is
unavailable the router falls back to inline shards and says why).
"""

from __future__ import annotations

import argparse
import asyncio

from repro import TrainingConfig, WiSeDBService, tpch_templates
from repro.serving import ServingEngine, ShardedServingEngine, TenantStream, drive
from repro.sla import AverageLatencyGoal, MaxLatencyGoal, PercentileGoal
from repro.workloads import poisson_arrivals

QUERIES_PER_TENANT = 60
TARGET_RATE = 300.0  # offered arrivals/sec across all tenants


async def serve(service: WiSeDBService, streams: list[TenantStream]) -> ServingEngine:
    engine = ServingEngine(service, queue_limit=256, backpressure="block")
    async with engine:
        print(f"\nDriving {len(streams)} tenants open loop at {TARGET_RATE:.0f}/s ...")
        report = await drive(engine, streams, target_rate=TARGET_RATE)
        print(
            f"  submitted {report.submitted} queries in {report.submit_seconds:.2f}s"
            f" (late: {report.late}); sustained {report.sustained_rate:.0f}"
            " decisions/sec end to end"
        )
        print(f"\nMetrics snapshot (health={engine.health()}):")
        print(engine.metrics().describe())
    return engine


async def serve_sharded(
    service: WiSeDBService, streams: list[TenantStream], shards: int
) -> ShardedServingEngine:
    engine = ShardedServingEngine(
        service, shards=shards, queue_limit=256, backpressure="block"
    )
    async with engine:
        # Ship every tenant's model to its shard up front so the drive
        # measures serving, not registration.
        await engine.warm(*(stream.tenant for stream in streams))
        mode = engine.effective_isolation
        detail = f" ({engine.fallback_reason})" if engine.fallback_reason else ""
        print(
            f"\nDriving {len(streams)} tenants across {shards} {mode} "
            f"shards{detail} at {TARGET_RATE:.0f}/s ..."
        )
        report = await drive(engine, streams, target_rate=TARGET_RATE)
        print(
            f"  submitted {report.submitted} queries in {report.submit_seconds:.2f}s"
            f" (late: {report.late}); sustained {report.sustained_rate:.0f}"
            " decisions/sec end to end"
        )
        if report.utilization is not None:
            print(
                f"  utilization {report.utilization:.3f} of the "
                f"{report.offered_rate:.0f}/s offered rate"
            )
        snapshot = await engine.metrics()
        print(f"\nMerged metrics snapshot (health={snapshot.status}):")
        print(snapshot.describe())
        if snapshot.batches_sent:
            print(
                f"\nPipelined admission: {snapshot.batched_queries} queries in "
                f"{snapshot.batches_sent} batch frames "
                f"(mean {snapshot.mean_batch_size:.1f}/frame, "
                f"{snapshot.rtts_saved} pipe round trips saved)"
            )
    return engine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="serve through a ShardedServingEngine with N shards "
        "(default: the single-process engine)",
    )
    arguments = parser.parse_args()

    templates = tpch_templates(8)
    service = WiSeDBService()
    config = TrainingConfig.fast(seed=3)
    goals = {
        "acme": MaxLatencyGoal.from_factor(templates, factor=2.5),
        "globex": PercentileGoal.from_factor(templates, factor=2.5),
        "initech": AverageLatencyGoal.from_factor(templates, factor=2.5),
    }
    for name, goal in goals.items():
        service.register(name, templates, goal, config=config)
    print(f"Training {len(goals)} tenants ...")
    for name in service.tenant_names():
        service.train(name)
        print(f"  {name:<8} [{service.tenant(name).provenance}]")

    # Seeded Poisson streams, one per tenant: deterministic per (seed, tenant),
    # quantized onto a 0.1 s grid so bursts coalesce into multi-query epochs.
    streams = [
        TenantStream(
            name,
            poisson_arrivals(
                templates, QUERIES_PER_TENANT, rate=4.0,
                seed=11, tenant=name, quantum=0.1,
            ),
        )
        for name in goals
    ]

    if arguments.shards > 0:
        engine = asyncio.run(serve_sharded(service, streams, arguments.shards))
    else:
        engine = asyncio.run(serve(service, streams))

    print("\nPriced outcomes (identical to direct OnlineScheduler runs):")
    for name in goals:
        outcome = engine.outcome(name)
        print(f"  {name:<8} {outcome.describe()}")
    service.close()


if __name__ == "__main__":
    main()
