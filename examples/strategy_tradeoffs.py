#!/usr/bin/env python3
"""Exploring performance/cost trade-offs with alternative strategies.

Section 6.1 of the paper: WiSeDB derives a ladder of models for stricter and
looser variants of the application's goal (re-using the original training
set), prunes them to a handful of meaningfully different strategies with the
Earth Mover's Distance, and hands each strategy to the user together with a
cost-estimation function.  The user can then price an upcoming workload under
every strategy before committing to one.

Run with ``python examples/strategy_tradeoffs.py``.
"""

from __future__ import annotations

from repro import TrainingConfig, WiSeDBAdvisor, tpch_templates, units
from repro.sla import PerQueryDeadlineGoal


def main() -> None:
    templates = tpch_templates(6)
    goal = PerQueryDeadlineGoal.from_factor(templates, factor=3.0)

    advisor = WiSeDBAdvisor(templates, config=TrainingConfig.fast(seed=3))
    advisor.train(goal)
    print(f"Application goal: {goal.describe()}")

    # Derive alternative strategies around the application goal.
    strategies = advisor.recommend_strategies(k=3, num_candidates=5, max_shift=0.5)

    # The application expects a workload dominated by two templates next month.
    expected_counts = {"T1": 400, "T2": 150, "T3": 150, "T4": 100, "T5": 100, "T6": 100}
    print(f"\nExpected workload: {sum(expected_counts.values())} queries")
    print(f"{'strategy':<12} {'mean deadline':>14} {'estimated cost':>16}")
    for index, strategy in enumerate(strategies):
        estimate = strategy.estimator.estimate(expected_counts)
        label = f"tier-{index + 1}"
        deadline_minutes = units.seconds_to_minutes(strategy.goal.deadline)
        print(f"{label:<12} {deadline_minutes:>11.1f} min {units.format_dollars(estimate):>16}")

    print(
        "\nStricter tiers meet tighter deadlines but provision more VMs; the"
        " estimates let the application pick the trade-off before executing."
    )


if __name__ == "__main__":
    main()
