#!/usr/bin/env python3
"""Comparing the learned strategy against hand-written heuristics.

Section 3 of the paper motivates learning: first-fit decreasing (FFD) suits
bin-packing-style max-latency goals, first-fit increasing (FFI) suits
per-query and average-latency goals, and Pack9 targets percentile goals — but
no single heuristic wins everywhere.  This example schedules the same large
workload with all three heuristics and with WiSeDB models trained for two
different goals, and prices every schedule under both goals.

Run with ``python examples/heuristic_comparison.py``.
"""

from __future__ import annotations

from repro import TrainingConfig, WiSeDBAdvisor, tpch_templates, units
from repro.baselines import (
    FirstFitDecreasingScheduler,
    FirstFitIncreasingScheduler,
    Pack9Scheduler,
)
from repro.cloud import TemplateLatencyModel
from repro.core.cost_model import CostModel
from repro.sla import AverageLatencyGoal, MaxLatencyGoal
from repro.workloads import WorkloadGenerator


def main() -> None:
    templates = tpch_templates(10)
    latency_model = TemplateLatencyModel(templates)
    cost_model = CostModel(latency_model)
    workload = WorkloadGenerator(templates, seed=17).uniform(500)

    goals = {
        "max latency": MaxLatencyGoal.from_factor(templates, factor=2.5),
        "average latency": AverageLatencyGoal.from_factor(templates, factor=2.5),
    }

    for goal_name, goal in goals.items():
        advisor = WiSeDBAdvisor(templates, config=TrainingConfig.fast(seed=19))
        advisor.train(goal)
        vm_type = advisor.vm_types.default
        schedulers = {
            "FFD": FirstFitDecreasingScheduler(vm_type, goal, latency_model),
            "FFI": FirstFitIncreasingScheduler(vm_type, goal, latency_model),
            "Pack9": Pack9Scheduler(vm_type, goal, latency_model),
        }
        print(f"\nGoal: {goal_name} — scheduling {len(workload)} queries")
        for name, scheduler in schedulers.items():
            cost = cost_model.total_cost(scheduler.schedule(workload), goal)
            print(f"  {name:<8}: {units.format_dollars(cost)}")
        wisedb_cost = cost_model.total_cost(advisor.schedule_batch(workload), goal)
        print(f"  {'WiSeDB':<8}: {units.format_dollars(wisedb_cost)}")

    print(
        "\nNote how the best hand-written heuristic changes with the goal, while"
        " the learned strategy adapts to whichever goal it was trained for."
    )


if __name__ == "__main__":
    main()
