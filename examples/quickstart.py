#!/usr/bin/env python3
"""Quickstart: a multi-tenant WiSeDB service with persistent models.

This example walks the service-layer API end to end:

1. describe two tenants (templates + performance goal each);
2. train both through the model registry — the second tenant shares the first
   one's workload specification, so it retrains *adaptively* (Section 5)
   instead of from scratch;
3. schedule a batch for each tenant through the unified Scheduler protocol
   and inspect the SchedulingOutcome (schedule, Equation-1 cost, overheads);
4. save the whole deployment to disk and reload it — nothing retrains, and
   the reloaded tenants schedule bit-identically;
5. show the legacy single-application ``WiSeDBAdvisor`` shim.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import tempfile
import warnings
from pathlib import Path

from repro import TrainingConfig, WiSeDBService, tpch_templates, units
from repro.sla import MaxLatencyGoal, PercentileGoal, PerQueryDeadlineGoal
from repro.workloads import WorkloadGenerator


def main() -> None:
    # 1. Workload specification: the paper's TPC-H templates, two tenants with
    #    different SLAs over the same specification.
    templates = tpch_templates(10)
    acme_goal = MaxLatencyGoal.from_factor(templates, factor=2.5)
    globex_goal = PerQueryDeadlineGoal.from_factor(templates, factor=3.0)
    print(f"Workload specification: {len(templates)} templates")

    service = WiSeDBService()  # pass registry="./models" to persist across runs
    config = TrainingConfig.fast(seed=1)
    service.register("acme", templates, acme_goal, config=config)
    service.register("globex", templates, globex_goal, config=config)

    # 2. Train through the registry.  "acme" trains fresh; "globex" differs
    #    only in its goal, so the service retrains adaptively from acme's
    #    stored samples (Section 5) instead of starting over.
    for name, result in service.train_all().items():
        tenant = service.tenant(name)
        print(
            f"  {name:<7} {tenant.spec.goal.describe():<32} "
            f"trained [{tenant.provenance}] in {result.training_time:.1f}s "
            f"({result.num_examples} decisions)"
        )

    # 2b. Per-tenant search-engine selection: tenants whose workloads make
    #     exact training search too slow can opt into a relaxed strategy
    #     (weighted A* / beam) and/or the tighter "tight" future-cost bound.
    #     Relaxed training is never silent — the model records its worst
    #     cost-vs-optimal ratio — and the engine choice is part of the
    #     registry fingerprint, so differently-engined tenants never share
    #     artifacts.
    initech_goal = PercentileGoal.from_factor(templates)
    service.register(
        "initech",
        templates,
        initech_goal,
        config=TrainingConfig.tiny(seed=2),
        search_strategy="beam:16",
        future_bound="tight",
    )
    initech = service.train("initech")
    print(
        f"  initech {initech_goal.describe():<32} "
        f"trained [beam:16 + tight bound], worst cost-vs-optimal ratio "
        f"{initech.worst_optimality_ratio:.3f}"
    )

    # 3. Schedule a 60-query batch for each tenant.  Every scheduler family
    #    returns the same SchedulingOutcome shape.
    workload = WorkloadGenerator(templates, seed=7).uniform(60)
    for name in service.tenant_names():
        outcome = service.schedule_batch(name, workload)
        print(f"\n{outcome.describe()}")
        print(f"  provisioning : {units.format_cents(outcome.cost.startup_cost)}")
        print(f"  execution    : {units.format_cents(outcome.cost.execution_cost)}")
        print(f"  SLA penalty  : {units.format_cents(outcome.cost.penalty_cost)}")
        print(f"  total        : {units.format_cents(outcome.cost.total)}")
        print(f"  scheduled in : {outcome.overhead.wall_time_seconds * 1000:.0f} ms")

    # 4. Persist the deployment and restore it: registry hits, no retraining,
    #    bit-identical schedules.
    with tempfile.TemporaryDirectory() as tmp:
        deployment = Path(tmp) / "deployment"
        service.save(deployment)
        reloaded = WiSeDBService.load(deployment)
        original = service.schedule_batch("acme", workload)
        restored = reloaded.schedule_batch("acme", workload)
        identical = (
            restored.schedule.signature() == original.schedule.signature()
            and restored.cost == original.cost
        )
        print(
            f"\nSaved + reloaded from {deployment.name}/: "
            f"{len(reloaded)} tenants, retrained nothing, "
            f"bit-identical schedules: {identical}"
        )

    # 5. The legacy facade still works as a deprecation-shimmed wrapper.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        from repro import WiSeDBAdvisor

        advisor = WiSeDBAdvisor(templates, config=config)
    advisor.train(acme_goal)
    schedule = advisor.schedule_batch(workload)
    print(
        f"\nLegacy WiSeDBAdvisor (deprecated shim): "
        f"{schedule.num_vms()} VMs, {units.format_cents(advisor.evaluate(schedule).total)}"
    )


if __name__ == "__main__":
    main()
