#!/usr/bin/env python3
"""Quickstart: train a WiSeDB model and schedule a batch workload.

This example walks through the advisor's core loop on the paper's TPC-H
workload specification:

1. describe the workload (query templates) and the performance goal;
2. train a decision model offline;
3. schedule an incoming batch of queries;
4. inspect the schedule and its Equation-1 cost.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import TrainingConfig, WiSeDBAdvisor, tpch_templates, units
from repro.sla import MaxLatencyGoal
from repro.workloads import WorkloadGenerator


def main() -> None:
    # 1. Workload specification: the ten TPC-H templates of Section 7.1, and a
    #    max-latency goal of 2.5x the longest template (15 minutes).
    templates = tpch_templates(10)
    goal = MaxLatencyGoal.from_factor(templates, factor=2.5)
    print(f"Workload specification: {len(templates)} templates")
    print(f"Performance goal: {goal.describe()}")

    # 2. Offline training.  TrainingConfig.fast() keeps this to a few seconds;
    #    TrainingConfig.paper() reproduces the paper's N=3000 / m=18 corpus.
    advisor = WiSeDBAdvisor(templates, config=TrainingConfig.fast(seed=1))
    result = advisor.train(goal)
    print(
        f"Trained on {len(result.samples)} sample workloads "
        f"({result.num_examples} decisions) in {result.training_time:.1f}s; "
        f"decision tree depth {result.model.metadata.tree_depth}"
    )

    # 3. Schedule an incoming batch of 60 queries.
    workload = WorkloadGenerator(templates, seed=7).uniform(60)
    schedule = advisor.schedule_batch(workload)

    # 4. Inspect the recommendation.
    print(f"\nSchedule for {len(workload)} queries:")
    print(f"  VMs to provision : {schedule.num_vms()}")
    for index, vm in enumerate(schedule):
        queue = ", ".join(q.template_name for q in vm.queries)
        print(f"  vm{index} ({vm.vm_type.name}): {queue}")

    cost = advisor.evaluate(schedule)
    print("\nEquation-1 cost breakdown:")
    print(f"  provisioning : {units.format_cents(cost.startup_cost)}")
    print(f"  execution    : {units.format_cents(cost.execution_cost)}")
    print(f"  SLA penalty  : {units.format_cents(cost.penalty_cost)}")
    print(f"  total        : {units.format_cents(cost.total)}")


if __name__ == "__main__":
    main()
