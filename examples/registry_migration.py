#!/usr/bin/env python3
"""Migrating a v1 JSON model registry to the SQLite-WAL store.

Before PR 8 the model registry was one JSON file per trained model.  This
example walks the migration path end to end (CI runs it as the
registry-migration smoke step):

1. build a v1-layout registry — plain ``<fingerprint>.json`` artifacts — the
   way an old deployment would have left it;
2. import it into a durable SQLite registry with
   ``ModelRegistry.from_json_dir(..., db_path=...)``;
3. query what only the new store can answer: the metadata projection
   (no model blob materialized) and the run-history log written by
   ``service.schedule_batch`` / ``service.run_online``;
4. round-trip back out with ``registry.export_json`` — byte-identical to the
   v1 files, so the layouts stay interchangeable.

Run with ``python examples/registry_migration.py``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import TrainingConfig, WiSeDBService, tpch_templates
from repro.service import ModelRegistry
from repro.sla import MaxLatencyGoal
from repro.workloads import WorkloadGenerator


def main() -> None:
    templates = tpch_templates(6)
    goal = MaxLatencyGoal.from_factor(templates, factor=2.5)
    config = TrainingConfig.tiny(seed=11)

    with tempfile.TemporaryDirectory() as tmp:
        legacy_dir = Path(tmp) / "v1-models"
        db_path = Path(tmp) / "registry.db"
        export_dir = Path(tmp) / "exported"

        # 1. A v1-era deployment: the JSON backend writes one file per model.
        legacy_service = WiSeDBService(
            registry=ModelRegistry(legacy_dir, backend="json")
        )
        legacy_service.register("acme", templates, goal, config=config)
        legacy_service.train("acme")
        legacy_service.close()
        v1_files = sorted(legacy_dir.glob("*.json"))
        print(f"v1 layout: {len(v1_files)} JSON artifact(s) under {legacy_dir.name}/")

        # 2. One-shot migration into a durable SQLite database.
        registry = ModelRegistry.from_json_dir(legacy_dir, db_path=db_path)
        print(
            f"migrated into {db_path.name}: {len(registry)} artifact(s), "
            f"schema v{registry.schema_version}"
        )

        # 3a. The metadata projection answers without touching a blob.
        (fingerprint,) = registry.fingerprints()
        meta = registry.model_metadata(fingerprint)
        print(
            f"metadata[{fingerprint[:12]}…]: goal={meta['goal_kind']} "
            f"strategy={meta['search_strategy']} bound={meta['future_bound']} "
            f"depth={meta['tree_depth']}"
        )

        # 3b. Scheduling through a service over the migrated registry writes
        #     the run-history log — per-tenant cost/SLA over time.
        service = WiSeDBService(registry=registry)
        service.register("acme", templates, goal, config=config)
        workload = WorkloadGenerator(templates, seed=3).uniform(30)
        service.schedule_batch("acme", workload)
        service.run_online("acme", workload)
        for run in service.history(tenant="acme"):
            print(
                f"history #{run.row_id}: {run.source:<6} "
                f"{run.num_queries} queries on {run.num_vms} VMs, "
                f"cost {run.total_cost:.1f}c, degraded={run.degraded}"
            )
        summary = service.run_summaries()["acme"]
        print(
            f"summary: {summary.runs} runs, mean cost {summary.mean_cost:.1f}c, "
            f"SLA compliance {summary.sla_compliance:.0%}"
        )
        service.close()

        # 4. Export back to the v1 layout — byte-identical files.
        (exported,) = registry.export_json(export_dir)
        identical = exported.read_bytes() == v1_files[0].read_bytes()
        print(f"export_json round trip byte-identical: {identical}")
        if not identical:
            raise SystemExit("export_json round trip diverged from the v1 layout")


if __name__ == "__main__":
    main()
