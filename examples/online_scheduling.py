#!/usr/bin/env python3
"""Online scheduling: placing queries as they arrive (Section 6.3).

The online scheduler treats every arrival as a small batch-scheduling task
over the queries that have not started executing yet.  Queries that have been
waiting are re-described as "aged" templates (their expected latency includes
the wait), and the model is adapted accordingly — cheaply, thanks to the model
reuse and linear-shifting optimizations.

Run with ``python examples/online_scheduling.py``.
"""

from __future__ import annotations

from repro import TrainingConfig, WiSeDBAdvisor, tpch_templates, units
from repro.runtime.online import OnlineOptimizations
from repro.sla import MaxLatencyGoal
from repro.workloads import WorkloadGenerator


def main() -> None:
    templates = tpch_templates(5)
    goal = MaxLatencyGoal.from_factor(templates, factor=2.5)
    advisor = WiSeDBAdvisor(templates, config=TrainingConfig.fast(seed=5))
    advisor.train(goal)

    # A stream of 15 queries arriving 45 seconds apart.
    generator = WorkloadGenerator(templates, seed=11)
    stream = generator.with_fixed_arrivals(generator.uniform(15), delay=45.0)

    for optimizations in (OnlineOptimizations.none(), OnlineOptimizations.all()):
        scheduler = advisor.online_scheduler(optimizations, wait_resolution=30.0)
        # ``scheduler.run(stream)`` returns the unified SchedulingOutcome; the
        # detailed report keeps the per-arrival telemetry this example prints.
        report = scheduler.run_report(stream)
        print(f"\nOptimizations: {optimizations.describe()}")
        print(f"  VMs rented            : {report.num_vms}")
        print(f"  total cost            : {units.format_cents(report.total_cost)}")
        print(f"  models retrained      : {report.retrains}")
        print(f"  model cache hits      : {report.cache_hits}")
        print(f"  mean scheduling delay : {report.average_overhead * 1000:.1f} ms/query")

    print(
        "\nWith Shift + Reuse the scheduler almost never retrains, which is what"
        " keeps the per-query scheduling delay low (Figure 19 in the paper)."
    )


if __name__ == "__main__":
    main()
