#!/usr/bin/env python3
"""Fault drill: replay a seeded spot-revocation storm against every goal.

Spot VMs trade a steep discount for the risk of revocation.  This drill
builds the scenario-zoo spot setup — an on-demand catalogue paired with a
discounted spot twin plus a seeded revocation stream — and runs the online
scheduler through the *same* storm under each of the paper's four
performance goals, printing the failure-accounting breakdown: what was
spent on useful work, what the failures threw away, and how much SLA
penalty the rescheduling delay caused.

Everything is keyed by one seed, so two runs of this script print
bit-identical numbers — which is exactly what makes fault injection usable
in tests and CI.

Run with ``python examples/fault_drill.py``.
"""

from __future__ import annotations

from repro import TrainingConfig, tpch_templates, units
from repro.service import WiSeDBService
from repro.sla.factory import GOAL_KINDS, default_goal
from repro.workloads import spot_revocation_scenario

SEED = 7


def main() -> None:
    templates = tpch_templates(5)
    # revocation_scale cranks the spot twin's advertised revocation rate up
    # so a short drill actually sees revocations; drop it to 1.0 for the
    # advertised-rate experience.
    scenario = spot_revocation_scenario(
        templates,
        seed=SEED,
        num_queries=10,
        arrival_delay=45.0,
        revocation_scale=12.0,
    )
    print(scenario.describe())

    # The tiny config keeps the drill quick: it is about failure accounting
    # under a storm, not model quality (the benchmarks measure that).
    with WiSeDBService() as service:
        for kind in GOAL_KINDS:
            service.register(
                kind,
                templates,
                default_goal(kind, templates),
                vm_types=scenario.vm_types,
                config=TrainingConfig.tiny(seed=SEED),
            )
            scheduler = service.online_scheduler(
                kind, wait_resolution=30.0, fault_plan=scenario.fault_plan
            )
            report = scheduler.run_report(scenario.workload)
            cost = report.cost
            print(f"\nGoal: {kind}")
            print(f"  VMs rented / lost    : {report.num_vms} / {report.vm_failures}")
            print(f"  queries re-enqueued  : {report.requeues}")
            print(f"  provision retries    : {report.retries}")
            print(f"  useful spend         : {units.format_cents(cost.failure_free_cost)}")
            print(f"    startup fees       : {units.format_cents(cost.startup_cost)}")
            print(f"    execution          : {units.format_cents(cost.execution_cost)}")
            print(f"    SLA penalty        : {units.format_cents(cost.penalty_cost)}")
            print(f"  wasted by failures   : {units.format_cents(cost.wasted_cost)}")
            print(f"    dead-VM fees       : {units.format_cents(cost.wasted_startup_cost)}")
            print(f"    lost execution     : {units.format_cents(cost.wasted_execution_cost)}")
            print(f"  total (Equation 1)   : {units.format_cents(cost.total)}")

    print(
        "\nThe identity total == useful + wasted holds for every run; re-run the"
        " script and the numbers repeat bit-for-bit (same seed, same storm)."
    )


if __name__ == "__main__":
    main()
